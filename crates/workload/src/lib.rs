//! Workloads: the statements DTA tunes, workload compression, and the
//! generators for every database/workload the paper evaluates on.
//!
//! * [`model`] — weighted statements, profiler-style traces, SQL-file
//!   loading (§2.1 "a workload can be obtained by using SQL Server
//!   Profiler ... or a SQL file");
//! * [`compression`] — §5.1 workload compression: partition by statement
//!   signature (templatization) and pick weighted representatives per
//!   partition with a clustering-based method, plus the two strawmen the
//!   paper argues against (uniform random sampling, top-k by cost);
//! * [`tpch`] — the TPC-H schema, a `dbgen`-like data generator with a
//!   scale-factor knob, and the 22 benchmark queries (rewritten into the
//!   reproduction's SQL dialect where the original uses subqueries);
//! * [`cust`] — synthetic stand-ins for the paper's four customer
//!   workloads CUST1–CUST4 (Table 1), including each DBA's hand-tuned
//!   configuration;
//! * [`psoft`] — a PeopleSoft-like OLTP mix (~6 000 statements, few
//!   templates, updates included);
//! * [`synt1`] — a SetQuery-style synthetic workload (8 000 SPJ queries
//!   with grouping/aggregation from ~100 templates).

pub mod compression;
pub mod cust;
pub mod gen_util;
pub mod model;
pub mod psoft;
pub mod synt1;
pub mod tpch;

pub use compression::{compress, CompressionOptions, CompressionOutcome};
pub use model::{Workload, WorkloadItem};

/// A generated benchmark: a loaded server, the workload to tune, and
/// (for the customer workloads) the DBA's hand-tuned configuration.
pub struct Benchmark {
    pub name: String,
    pub server: dta_server::Server,
    pub workload: Workload,
    /// The manually tuned physical design the paper compares against
    /// (§7.1); `None` for benchmarks without one.
    pub hand_tuned: Option<dta_physical::Configuration>,
    pub databases: Vec<String>,
}
