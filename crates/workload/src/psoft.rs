//! PSOFT: a PeopleSoft-application-like workload (§7.4).
//!
//! The paper describes it as a customer database of ~0.75 GB whose
//! workload contains about 6 000 queries, inserts, updates and deletes,
//! heavily templatized (DTA's compression ends up tuning ~10% of it).

use crate::gen_util::{build_database, rand_a, TableSpec};
use crate::model::{Workload, WorkloadItem};
use crate::Benchmark;
use dta_server::Server;
use dta_sql::parse_statement;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A parameterized statement generator.
type Template = Box<dyn Fn(&mut StdRng) -> String>;

/// Database name.
pub const DB: &str = "psoft";

/// Number of statements in the full workload.
pub const EVENTS: usize = 6_000;

/// Build the PSOFT benchmark. `events_fraction` scales the 6 000-event
/// workload.
pub fn build(events_fraction: f64, seed: u64) -> Benchmark {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut server = Server::new("PSOFT");

    // ~40 tables, a handful hot; ~0.75 GB presented
    let mut specs = Vec::new();
    for t in 0..40 {
        let name = format!("ps_rec{:02}", t);
        let spec = if t < 8 {
            TableSpec::new(&name, 15_000).scale(40.0).distincts(400, 25)
        } else {
            TableSpec::new(&name, 500).distincts(50, 5).pad(60)
        };
        specs.push(spec);
    }
    build_database(&mut server, DB, &specs, &mut rng);

    // ~55 templates over the hot tables: the stored-procedure feel
    let hot: Vec<&TableSpec> = specs.iter().take(8).collect();
    let mut templates: Vec<Template> = Vec::new();
    for (i, spec) in hot.iter().enumerate() {
        let t = spec.name.clone();
        let rows = spec.rows as i64;
        let spec_a = spec.distinct_a;
        // point select by key
        templates.push(Box::new({
            let t = t.clone();
            move |rng| format!("SELECT a, c, pad FROM {t} WHERE k = {}", rng.gen_range(0..rows))
        }));
        // select by category
        templates.push(Box::new({
            let t = t.clone();
            move |rng| format!("SELECT k, pad FROM {t} WHERE a = {}", rng.gen_range(0..spec_a))
        }));
        // grouped report
        templates.push(Box::new({
            let t = t.clone();
            move |rng| {
                let lo = rng.gen_range(0..spec_a.max(2) - 1);
                format!(
                    "SELECT b, COUNT(*), AVG(c) FROM {t} WHERE a BETWEEN {lo} AND {} GROUP BY b",
                    lo + spec_a / 10 + 1
                )
            }
        }));
        // update by key
        templates.push(Box::new({
            let t = t.clone();
            move |rng| {
                format!(
                    "UPDATE {t} SET c = {}, d = {} WHERE k = {}",
                    rng.gen_range(0..1000),
                    rng.gen_range(0..100),
                    rng.gen_range(0..rows)
                )
            }
        }));
        // insert
        templates.push(Box::new({
            let t = t.clone();
            move |rng| {
                format!(
                    "INSERT INTO {t} VALUES ({}, {}, {}, {}, {}, 'newrow')",
                    rows + rng.gen_range(0..100_000),
                    rng.gen_range(0..spec_a),
                    rng.gen_range(0..25),
                    rng.gen_range(0..1000),
                    rng.gen_range(0..100),
                )
            }
        }));
        // delete (only for a few tables)
        if i < 3 {
            templates.push(Box::new({
                let t = t.clone();
                move |rng| format!("DELETE FROM {t} WHERE k = {}", rng.gen_range(0..rows))
            }));
        }
        // join to the next hot table
        if i + 1 < hot.len() {
            let t2 = hot[i + 1].name.clone();
            templates.push(Box::new({
                let t = t.clone();
                move |rng| {
                    format!(
                        "SELECT {t}.pad FROM {t}, {t2} WHERE {t}.k = {t2}.k AND {t2}.a = {}",
                        rng.gen_range(0..spec_a)
                    )
                }
            }));
        }
    }

    let total = ((EVENTS as f64 * events_fraction).round() as usize).max(50);
    let mut items = Vec::with_capacity(total);
    for _ in 0..total {
        let sql = templates[rng.gen_range(0..templates.len())](&mut rng);
        items.push(WorkloadItem::new(DB, parse_statement(&sql).expect("generated SQL parses")));
    }

    let databases = vec![DB.to_string()];
    let _ = rand_a; // referenced for symmetry with other generators
    Benchmark {
        name: "PSOFT".to_string(),
        server,
        workload: Workload::from_items(items),
        hand_tuned: None,
        databases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compression::{compress, CompressionOptions};

    #[test]
    fn shape_matches_paper() {
        let b = build(0.05, 11);
        assert_eq!(b.workload.len(), 300);
        let frac = b.workload.update_fraction();
        assert!(frac > 0.2 && frac < 0.75, "update fraction {frac}");
        let gb = b.server.total_data_bytes() as f64 / (1u64 << 30) as f64;
        assert!(gb > 0.2 && gb < 3.0, "presents {gb} GB");
    }

    #[test]
    fn compresses_well() {
        let b = build(0.5, 11); // 3000 events
        let out = compress(&b.workload, CompressionOptions::default());
        // few distinct templates: strong compression expected
        assert!(
            out.compression_ratio() > 4.0,
            "ratio {} partitions {}",
            out.compression_ratio(),
            out.partitions
        );
    }

    #[test]
    fn statements_bind() {
        let b = build(0.02, 3);
        let raw = b.server.raw_configuration();
        for item in &b.workload.items {
            assert!(b.server.whatif(DB, &item.statement, &raw).is_ok());
        }
    }
}
