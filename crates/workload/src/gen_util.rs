//! Shared machinery for the synthetic customer-workload generators.

use dta_catalog::{Column, ColumnType, Database, Table, Value};
use dta_server::Server;
use rand::rngs::StdRng;
use rand::Rng;

/// Specification of one synthetic table.
///
/// Every synthetic table has the same shape — `k` (unique key, PK),
/// `a`/`b` (skewed categorical columns queries filter and group on),
/// `c`/`d` (update-target / random columns), and `pad` (a filler string
/// that gives rows realistic width) — with per-table cardinalities.
#[derive(Debug, Clone)]
pub struct TableSpec {
    pub name: String,
    /// Materialized rows.
    pub rows: usize,
    /// Logical scale multiplier (presented size = rows × scale).
    pub scale: f64,
    /// Distinct values of `a`.
    pub distinct_a: i64,
    /// Distinct values of `b`.
    pub distinct_b: i64,
    /// Width of the `pad` column in bytes.
    pub pad_width: u16,
}

impl TableSpec {
    /// A spec with sane defaults.
    pub fn new(name: impl Into<String>, rows: usize) -> Self {
        Self {
            name: name.into(),
            rows,
            scale: 1.0,
            distinct_a: 1000,
            distinct_b: 20,
            pad_width: 80,
        }
    }

    /// Builder-style overrides.
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    pub fn distincts(mut self, a: i64, b: i64) -> Self {
        self.distinct_a = a.max(1);
        self.distinct_b = b.max(1);
        self
    }

    pub fn pad(mut self, width: u16) -> Self {
        self.pad_width = width;
        self
    }

    /// The catalog table definition.
    pub fn table(&self) -> Table {
        Table::new(
            &self.name,
            vec![
                Column::new("k", ColumnType::BigInt),
                Column::new("a", ColumnType::Int),
                Column::new("b", ColumnType::Int),
                Column::new("c", ColumnType::Int),
                Column::new("d", ColumnType::Int),
                Column::new("pad", ColumnType::Str(self.pad_width)),
            ],
        )
        .with_primary_key(&["k"])
    }
}

/// Build a database from table specs and load it into a fresh server.
pub fn build_database(server: &mut Server, db_name: &str, specs: &[TableSpec], rng: &mut StdRng) {
    let mut db = Database::new(db_name);
    for spec in specs {
        db.add_table(spec.table()).expect("unique table names");
    }
    server.create_database(db).expect("valid synthetic schema");
    for spec in specs {
        let data = server.table_data_mut(db_name, &spec.name).expect("table created");
        for k in 0..spec.rows as i64 {
            data.push_row(vec![
                Value::Int(k),
                Value::Int(k % spec.distinct_a),
                Value::Int(k % spec.distinct_b),
                Value::Int(rng.gen_range(0..1000)),
                Value::Int(rng.gen_range(0..100)),
                Value::Str(pad_string(spec.pad_width as usize, k)),
            ]);
        }
        if spec.scale > 1.0 {
            data.set_scale(spec.scale);
        }
    }
}

/// Deterministic filler text.
fn pad_string(width: usize, seed: i64) -> String {
    let mut s = String::with_capacity(width);
    let mut x = seed as u64 ^ 0x9E37_79B9;
    while s.len() < width {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        s.push((b'a' + (x >> 57) as u8 % 26) as char);
    }
    s
}

/// Random constant for predicates on column `a` of a spec.
pub fn rand_a(spec: &TableSpec, rng: &mut StdRng) -> i64 {
    rng.gen_range(0..spec.distinct_a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn builds_and_loads() {
        let mut server = Server::new("s");
        let mut rng = StdRng::seed_from_u64(1);
        let specs =
            vec![TableSpec::new("t1", 100).distincts(10, 2), TableSpec::new("t2", 50).scale(100.0)];
        build_database(&mut server, "db", &specs, &mut rng);
        let t1 = server.store().table("db", "t1").unwrap();
        assert_eq!(t1.rows(), 100);
        let a = t1.column_by_name("a").unwrap();
        let distinct: std::collections::BTreeSet<_> = a.iter().cloned().collect();
        assert_eq!(distinct.len(), 10);
        let t2 = server.store().table("db", "t2").unwrap();
        assert_eq!(t2.logical_rows(), 5000);
    }

    #[test]
    fn pad_deterministic() {
        assert_eq!(pad_string(16, 5), pad_string(16, 5));
        assert_ne!(pad_string(16, 5), pad_string(16, 6));
        assert_eq!(pad_string(16, 5).len(), 16);
    }
}
