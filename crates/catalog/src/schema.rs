//! Databases, tables, columns and constraints.

use crate::types::ColumnType;
use crate::{CatalogError, Result};
use std::collections::BTreeMap;

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name, lower-cased.
    pub name: String,
    /// Logical type (carries the average width).
    pub ty: ColumnType,
    /// Whether NULLs are allowed.
    pub nullable: bool,
}

impl Column {
    /// Non-nullable column shorthand.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Self { name: name.into().to_ascii_lowercase(), ty, nullable: false }
    }

    /// Nullable column shorthand.
    pub fn nullable(name: impl Into<String>, ty: ColumnType) -> Self {
        Self { name: name.into().to_ascii_lowercase(), ty, nullable: true }
    }
}

/// A foreign-key constraint from this table to a parent table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing columns in the child table.
    pub columns: Vec<String>,
    /// Referenced (parent) table.
    pub parent_table: String,
    /// Referenced columns in the parent (its primary key).
    pub parent_columns: Vec<String>,
}

/// A table definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table name, lower-cased.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<Column>,
    /// Primary-key columns (empty = no primary key). The raw configuration
    /// keeps the index that enforces this key.
    pub primary_key: Vec<String>,
    /// Foreign keys to parent tables.
    pub foreign_keys: Vec<ForeignKey>,
    /// Logical row count carried by scripted metadata (0 = unknown).
    /// Populated on export so a test server can cost queries over tables
    /// it holds no data for (§5.3).
    pub rows: u64,
}

impl Table {
    /// New table with no constraints.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        Self {
            name: name.into().to_ascii_lowercase(),
            columns,
            primary_key: Vec::new(),
            foreign_keys: Vec::new(),
            rows: 0,
        }
    }

    /// Builder-style: set the primary key.
    pub fn with_primary_key(mut self, cols: &[&str]) -> Self {
        self.primary_key = cols.iter().map(|c| c.to_ascii_lowercase()).collect();
        self
    }

    /// Builder-style: add a foreign key.
    pub fn with_foreign_key(mut self, cols: &[&str], parent: &str, parent_cols: &[&str]) -> Self {
        self.foreign_keys.push(ForeignKey {
            columns: cols.iter().map(|c| c.to_ascii_lowercase()).collect(),
            parent_table: parent.to_ascii_lowercase(),
            parent_columns: parent_cols.iter().map(|c| c.to_ascii_lowercase()).collect(),
        });
        self
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Position of a column in declaration order.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// True if the table has a column with this name.
    pub fn has_column(&self, name: &str) -> bool {
        self.column(name).is_some()
    }

    /// Sum of column widths — the average row width in bytes.
    pub fn row_width(&self) -> u32 {
        self.columns.iter().map(|c| c.ty.width()).sum()
    }

    /// Validate internal consistency (PK/FK columns exist, arities match).
    pub fn validate(&self) -> Result<()> {
        for pk in &self.primary_key {
            if !self.has_column(pk) {
                return Err(CatalogError::UnknownColumn {
                    table: self.name.clone(),
                    column: pk.clone(),
                });
            }
        }
        for fk in &self.foreign_keys {
            if fk.columns.len() != fk.parent_columns.len() {
                return Err(CatalogError::InvalidConstraint(format!(
                    "foreign key on '{}' has mismatched arity",
                    self.name
                )));
            }
            for c in &fk.columns {
                if !self.has_column(c) {
                    return Err(CatalogError::UnknownColumn {
                        table: self.name.clone(),
                        column: c.clone(),
                    });
                }
            }
        }
        Ok(())
    }
}

/// A database: a named collection of tables.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Database {
    /// Database name, lower-cased.
    pub name: String,
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// Create an empty database.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into().to_ascii_lowercase(), tables: BTreeMap::new() }
    }

    /// Add a table; errors if one with the same name exists or the table
    /// is internally inconsistent.
    pub fn add_table(&mut self, table: Table) -> Result<()> {
        table.validate()?;
        if self.tables.contains_key(&table.name) {
            return Err(CatalogError::AlreadyExists(table.name));
        }
        self.tables.insert(table.name.clone(), table);
        Ok(())
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Look up a table, producing a catalog error if missing.
    pub fn table_required(&self, name: &str) -> Result<&Table> {
        self.table(name).ok_or_else(|| CatalogError::UnknownTable(name.to_string()))
    }

    /// Iterate over tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Iterate mutably over tables in name order.
    pub fn tables_mut(&mut self) -> impl Iterator<Item = &mut Table> {
        self.tables.values_mut()
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Cross-table validation: every FK parent exists and its columns
    /// exist in the parent.
    pub fn validate(&self) -> Result<()> {
        for t in self.tables.values() {
            t.validate()?;
            for fk in &t.foreign_keys {
                let parent = self.table_required(&fk.parent_table)?;
                for pc in &fk.parent_columns {
                    if !parent.has_column(pc) {
                        return Err(CatalogError::UnknownColumn {
                            table: parent.name.clone(),
                            column: pc.clone(),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// A catalog: the set of databases on a server. DTA can tune workloads
/// that span multiple databases simultaneously (§2.1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Catalog {
    databases: BTreeMap<String, Database>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a database; errors on duplicates.
    pub fn add_database(&mut self, db: Database) -> Result<()> {
        if self.databases.contains_key(&db.name) {
            return Err(CatalogError::AlreadyExists(db.name));
        }
        self.databases.insert(db.name.clone(), db);
        Ok(())
    }

    /// Look up a database.
    pub fn database(&self, name: &str) -> Option<&Database> {
        self.databases.get(name)
    }

    /// Look up a database, producing an error if missing.
    pub fn database_required(&self, name: &str) -> Result<&Database> {
        self.database(name).ok_or_else(|| CatalogError::UnknownDatabase(name.to_string()))
    }

    /// Mutable database lookup.
    pub fn database_mut(&mut self, name: &str) -> Option<&mut Database> {
        self.databases.get_mut(name)
    }

    /// Iterate databases in name order.
    pub fn databases(&self) -> impl Iterator<Item = &Database> {
        self.databases.values()
    }

    /// Number of databases.
    pub fn database_count(&self) -> usize {
        self.databases.len()
    }

    /// Total number of tables across all databases.
    pub fn total_table_count(&self) -> usize {
        self.databases.values().map(|d| d.table_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t_orders() -> Table {
        Table::new(
            "orders",
            vec![
                Column::new("o_orderkey", ColumnType::BigInt),
                Column::new("o_custkey", ColumnType::BigInt),
                Column::new("o_totalprice", ColumnType::Float),
                Column::nullable("o_comment", ColumnType::Str(40)),
            ],
        )
        .with_primary_key(&["o_orderkey"])
        .with_foreign_key(&["o_custkey"], "customer", &["c_custkey"])
    }

    #[test]
    fn table_basics() {
        let t = t_orders();
        assert!(t.has_column("o_custkey"));
        assert_eq!(t.column_index("o_totalprice"), Some(2));
        assert_eq!(t.row_width(), 8 + 8 + 8 + 40);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn names_are_lowercased() {
        let t = Table::new("Orders", vec![Column::new("O_OrderKey", ColumnType::Int)]);
        assert_eq!(t.name, "orders");
        assert!(t.has_column("o_orderkey"));
    }

    #[test]
    fn bad_primary_key_rejected() {
        let t =
            Table::new("t", vec![Column::new("a", ColumnType::Int)]).with_primary_key(&["nope"]);
        assert!(matches!(t.validate(), Err(CatalogError::UnknownColumn { .. })));
    }

    #[test]
    fn fk_arity_mismatch_rejected() {
        let mut t = Table::new("t", vec![Column::new("a", ColumnType::Int)]);
        t.foreign_keys.push(ForeignKey {
            columns: vec!["a".into()],
            parent_table: "p".into(),
            parent_columns: vec!["x".into(), "y".into()],
        });
        assert!(matches!(t.validate(), Err(CatalogError::InvalidConstraint(_))));
    }

    #[test]
    fn database_validation_checks_fk_targets() {
        let mut db = Database::new("db");
        db.add_table(t_orders()).unwrap();
        // parent table "customer" missing
        assert!(matches!(db.validate(), Err(CatalogError::UnknownTable(_))));
        db.add_table(
            Table::new("customer", vec![Column::new("c_custkey", ColumnType::BigInt)])
                .with_primary_key(&["c_custkey"]),
        )
        .unwrap();
        assert!(db.validate().is_ok());
    }

    #[test]
    fn duplicate_objects_rejected() {
        let mut db = Database::new("db");
        db.add_table(Table::new("t", vec![Column::new("a", ColumnType::Int)])).unwrap();
        assert!(matches!(
            db.add_table(Table::new("t", vec![Column::new("a", ColumnType::Int)])),
            Err(CatalogError::AlreadyExists(_))
        ));
        let mut cat = Catalog::new();
        cat.add_database(db.clone()).unwrap();
        assert!(matches!(cat.add_database(db), Err(CatalogError::AlreadyExists(_))));
    }

    #[test]
    fn catalog_counts() {
        let mut cat = Catalog::new();
        let mut db1 = Database::new("a");
        db1.add_table(Table::new("t1", vec![Column::new("x", ColumnType::Int)])).unwrap();
        db1.add_table(Table::new("t2", vec![Column::new("x", ColumnType::Int)])).unwrap();
        let mut db2 = Database::new("b");
        db2.add_table(Table::new("t3", vec![Column::new("x", ColumnType::Int)])).unwrap();
        cat.add_database(db1).unwrap();
        cat.add_database(db2).unwrap();
        assert_eq!(cat.database_count(), 2);
        assert_eq!(cat.total_table_count(), 3);
        assert!(cat.database_required("a").is_ok());
        assert!(cat.database_required("zzz").is_err());
    }
}
