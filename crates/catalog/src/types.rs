//! Column types and runtime values.

use std::cmp::Ordering;
use std::fmt;

/// Logical column types supported by the substrate.
///
/// Widths drive the page model: a table's row width is the sum of its
/// column widths, and index/materialized-view sizes are estimated from the
/// widths of the columns they contain — the same storage model DTA's
/// storage-bound enumeration reasons with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 32-bit integer (4 bytes).
    Int,
    /// 64-bit integer (8 bytes).
    BigInt,
    /// Double-precision float (8 bytes).
    Float,
    /// Variable-length string with a declared average width in bytes.
    Str(u16),
    /// Calendar date, stored as an ISO-8601 string (8 bytes as an encoded
    /// day number).
    Date,
}

impl ColumnType {
    /// Average stored width in bytes, used by the page model.
    pub fn width(self) -> u32 {
        match self {
            ColumnType::Int => 4,
            ColumnType::BigInt => 8,
            ColumnType::Float => 8,
            ColumnType::Str(w) => w as u32,
            ColumnType::Date => 8,
        }
    }

    /// True if values of this type order numerically.
    pub fn is_numeric(self) -> bool {
        matches!(self, ColumnType::Int | ColumnType::BigInt | ColumnType::Float)
    }

    /// Stable name used by metadata scripting and the XML schema.
    pub fn type_name(self) -> String {
        match self {
            ColumnType::Int => "int".to_string(),
            ColumnType::BigInt => "bigint".to_string(),
            ColumnType::Float => "float".to_string(),
            ColumnType::Str(w) => format!("varchar({w})"),
            ColumnType::Date => "date".to_string(),
        }
    }

    /// Inverse of [`ColumnType::type_name`].
    pub fn parse_type_name(s: &str) -> Option<ColumnType> {
        match s {
            "int" => Some(ColumnType::Int),
            "bigint" => Some(ColumnType::BigInt),
            "float" => Some(ColumnType::Float),
            "date" => Some(ColumnType::Date),
            other => {
                let inner = other.strip_prefix("varchar(")?.strip_suffix(')')?;
                inner.parse().ok().map(ColumnType::Str)
            }
        }
    }
}

/// A runtime value stored in a table or compared in a predicate.
///
/// `Value` implements a *total* order (`Null` sorts first, numeric types
/// compare numerically across `Int`/`Float`, strings lexicographically)
/// so it can key histograms and sort runs.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Str(String),
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        // consistent with Ord: Int(2) == Float(2.0)
        self.cmp(other) == Ordering::Equal
    }
}

impl Value {
    /// Interpret the value as f64 where meaningful (for histograms over
    /// numeric columns). Strings map to `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// True if this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) | Value::Float(_) => 1,
            Value::Str(_) => 2,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // hash ints and integral floats identically, consistent with Ord/Eq
            Value::Int(v) => {
                1u8.hash(state);
                (*v as f64).to_bits().hash(state);
            }
            Value::Float(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(ColumnType::Int.width(), 4);
        assert_eq!(ColumnType::Str(25).width(), 25);
        assert_eq!(ColumnType::Date.width(), 8);
    }

    #[test]
    fn type_name_roundtrip() {
        for ty in [
            ColumnType::Int,
            ColumnType::BigInt,
            ColumnType::Float,
            ColumnType::Str(25),
            ColumnType::Date,
        ] {
            assert_eq!(ColumnType::parse_type_name(&ty.type_name()), Some(ty));
        }
        assert_eq!(ColumnType::parse_type_name("blob"), None);
        assert_eq!(ColumnType::parse_type_name("varchar(x)"), None);
    }

    #[test]
    fn value_total_order() {
        let mut vs = vec![
            Value::Str("b".into()),
            Value::Int(3),
            Value::Null,
            Value::Float(2.5),
            Value::Int(2),
            Value::Str("a".into()),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::Int(2),
                Value::Float(2.5),
                Value::Int(3),
                Value::Str("a".into()),
                Value::Str("b".into()),
            ]
        );
    }

    #[test]
    fn cross_type_numeric_equality_consistent_with_hash() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = Value::Int(2);
        let b = Value::Float(2.0);
        assert_eq!(a.cmp(&b), Ordering::Equal);
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn as_f64() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }
}
