//! Metadata scripting: export a database's schema *without data* and
//! re-import it elsewhere.
//!
//! This is the Step-1 facility of the production/test-server scenario
//! (§5.3): "Copy the metadata of the databases one wants to tune from the
//! production server to the test server. We do not import the actual data
//! from any tables." The script format is a simple line-oriented text
//! format (one `table`/`rows`/`column`/`pk`/`fk` record per line) mirroring how
//! real servers script out `CREATE TABLE` statements; it is deliberately
//! independent of the XML schema used for DTA input/output.

use crate::schema::{Column, Database, ForeignKey, Table};
use crate::types::ColumnType;
use crate::{CatalogError, Result};

/// A scripted database schema, cheap to ship between servers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetadataScript {
    /// The script text.
    pub text: String,
}

impl MetadataScript {
    /// Script out a database's metadata.
    pub fn export(db: &Database) -> Self {
        let mut text = String::new();
        text.push_str(&format!("database {}\n", db.name));
        for t in db.tables() {
            text.push_str(&format!("table {}\n", t.name));
            if t.rows > 0 {
                text.push_str(&format!("rows {}\n", t.rows));
            }
            for c in &t.columns {
                text.push_str(&format!(
                    "column {} {} {}\n",
                    c.name,
                    c.ty.type_name(),
                    if c.nullable { "null" } else { "notnull" }
                ));
            }
            if !t.primary_key.is_empty() {
                text.push_str(&format!("pk {}\n", t.primary_key.join(",")));
            }
            for fk in &t.foreign_keys {
                text.push_str(&format!(
                    "fk {} -> {} {}\n",
                    fk.columns.join(","),
                    fk.parent_table,
                    fk.parent_columns.join(",")
                ));
            }
        }
        Self { text }
    }

    /// Re-create a database from a script.
    pub fn import(&self) -> Result<Database> {
        let mut db: Option<Database> = None;
        let mut current: Option<Table> = None;

        fn flush(db: &mut Option<Database>, current: &mut Option<Table>) -> Result<()> {
            if let Some(t) = current.take() {
                db.as_mut()
                    .ok_or_else(|| CatalogError::InvalidConstraint("table before database".into()))?
                    .add_table(t)?;
            }
            Ok(())
        }

        for line in self.text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (kind, rest) = line
                .split_once(' ')
                .ok_or_else(|| CatalogError::InvalidConstraint(format!("bad line '{line}'")))?;
            match kind {
                "database" => {
                    flush(&mut db, &mut current)?;
                    db = Some(Database::new(rest));
                }
                "table" => {
                    flush(&mut db, &mut current)?;
                    current = Some(Table::new(rest, Vec::new()));
                }
                "column" => {
                    let t = current.as_mut().ok_or_else(|| {
                        CatalogError::InvalidConstraint("column outside table".into())
                    })?;
                    let mut parts = rest.split(' ');
                    let name = parts.next().unwrap_or_default();
                    let ty =
                        parts.next().and_then(ColumnType::parse_type_name).ok_or_else(|| {
                            CatalogError::InvalidConstraint(format!("bad column line '{line}'"))
                        })?;
                    let nullable = parts.next() == Some("null");
                    let col =
                        if nullable { Column::nullable(name, ty) } else { Column::new(name, ty) };
                    t.columns.push(col);
                }
                "rows" => {
                    let t = current.as_mut().ok_or_else(|| {
                        CatalogError::InvalidConstraint("rows outside table".into())
                    })?;
                    t.rows = rest.parse().map_err(|_| {
                        CatalogError::InvalidConstraint(format!("bad rows line '{line}'"))
                    })?;
                }
                "pk" => {
                    let t = current.as_mut().ok_or_else(|| {
                        CatalogError::InvalidConstraint("pk outside table".into())
                    })?;
                    t.primary_key = rest.split(',').map(str::to_string).collect();
                }
                "fk" => {
                    let t = current.as_mut().ok_or_else(|| {
                        CatalogError::InvalidConstraint("fk outside table".into())
                    })?;
                    // format: cols -> parent parent_cols
                    let (cols, tail) = rest.split_once(" -> ").ok_or_else(|| {
                        CatalogError::InvalidConstraint(format!("bad fk line '{line}'"))
                    })?;
                    let (parent, parent_cols) = tail.split_once(' ').ok_or_else(|| {
                        CatalogError::InvalidConstraint(format!("bad fk line '{line}'"))
                    })?;
                    t.foreign_keys.push(ForeignKey {
                        columns: cols.split(',').map(str::to_string).collect(),
                        parent_table: parent.to_string(),
                        parent_columns: parent_cols.split(',').map(str::to_string).collect(),
                    });
                }
                other => {
                    return Err(CatalogError::InvalidConstraint(format!(
                        "unknown record kind '{other}'"
                    )))
                }
            }
        }
        flush(&mut db, &mut current)?;
        db.ok_or_else(|| CatalogError::InvalidConstraint("empty script".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new("shop");
        db.add_table(
            Table::new(
                "customer",
                vec![
                    Column::new("c_custkey", ColumnType::BigInt),
                    Column::nullable("c_name", ColumnType::Str(25)),
                ],
            )
            .with_primary_key(&["c_custkey"]),
        )
        .unwrap();
        db.add_table(
            Table::new(
                "orders",
                vec![
                    Column::new("o_orderkey", ColumnType::BigInt),
                    Column::new("o_custkey", ColumnType::BigInt),
                    Column::new("o_orderdate", ColumnType::Date),
                ],
            )
            .with_primary_key(&["o_orderkey"])
            .with_foreign_key(&["o_custkey"], "customer", &["c_custkey"]),
        )
        .unwrap();
        db
    }

    #[test]
    fn export_import_roundtrip() {
        let db = sample_db();
        let script = MetadataScript::export(&db);
        let imported = script.import().unwrap();
        assert_eq!(db, imported);
        imported.validate().unwrap();
    }

    #[test]
    fn script_carries_no_data_and_is_small() {
        let script = MetadataScript::export(&sample_db());
        // metadata scripting "does not depend on data size" (§5.3)
        assert!(script.text.len() < 512, "script unexpectedly large: {}", script.text.len());
    }

    #[test]
    fn malformed_scripts_rejected() {
        for bad in [
            "table t\ncolumn a int notnull\n",        // table before database
            "database d\ncolumn a int notnull\n",     // column outside table
            "database d\ntable t\ncolumn a blob x\n", // bad type
            "database d\nfrobnicate x\n",             // unknown record
            "",                                       // empty
            "database d\ntable t\nfk a b\n",          // bad fk syntax
            "database d\nrows 10\n",                  // rows outside table
            "database d\ntable t\nrows many\n",       // non-numeric rows
        ] {
            let script = MetadataScript { text: bad.to_string() };
            assert!(script.import().is_err(), "expected error for {bad:?}");
        }
    }
}
