//! Logical schema metadata for the DTA reproduction.
//!
//! The catalog is the part of a database that the production/test-server
//! scenario (§5.3 of the paper) copies *without any data*: databases,
//! tables, columns, types, and the referential-integrity constraints whose
//! enforcing indexes survive in the "raw" configuration of the
//! experiments. [`script::MetadataScript`] is the scripting facility that
//! exports and re-imports this metadata.

pub mod schema;
pub mod script;
pub mod types;

pub use schema::{Catalog, Column, Database, ForeignKey, Table};
pub use types::{ColumnType, Value};

/// Errors raised when manipulating catalogs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// Referenced database does not exist.
    UnknownDatabase(String),
    /// Referenced table does not exist.
    UnknownTable(String),
    /// Referenced column does not exist in the table.
    UnknownColumn { table: String, column: String },
    /// Attempt to create an object that already exists.
    AlreadyExists(String),
    /// A constraint definition is inconsistent (e.g. FK arity mismatch).
    InvalidConstraint(String),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::UnknownDatabase(d) => write!(f, "unknown database '{d}'"),
            CatalogError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            CatalogError::UnknownColumn { table, column } => {
                write!(f, "unknown column '{column}' in table '{table}'")
            }
            CatalogError::AlreadyExists(o) => write!(f, "object '{o}' already exists"),
            CatalogError::InvalidConstraint(m) => write!(f, "invalid constraint: {m}"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// Result alias for catalog operations.
pub type Result<T> = std::result::Result<T, CatalogError>;
