//! Reduced statistics creation — the greedy H-List/D-List covering
//! algorithm of §5.2.
//!
//! Problem: given a set of statistics `S = {s₁ … sₙ}` that tuning needs
//! (each sᵢ a column sequence providing a histogram on its leading column
//! and densities on each leading prefix), find a smallest-cardinality
//! subset `S′ ⊆ S` that contains the same histogram and density
//! information as `S`.
//!
//! The algorithm (paper's Steps 1–4):
//! 1. Build the **H-List** (columns needing a histogram) and the
//!    **D-List** (column *sets* needing density) from `S`, skipping
//!    anything an existing statistics cache already covers.
//! 2. Pick the remaining statistic covering the most uncovered
//!    H-List/D-List entries.
//! 3. Remove what it covers; remove it from `S`.
//! 4. Repeat until both lists are empty.
//!
//! Creation cost is dominated by sampling I/O on the table, so minimizing
//! *cardinality* per table is the right proxy for minimizing time.

use crate::manager::StatisticsManager;
use crate::statistic::StatKey;
use std::collections::BTreeSet;

/// Result of a reduction pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReductionOutcome {
    /// The statistics actually worth creating, in greedy pick order.
    pub chosen: Vec<StatKey>,
    /// How many were requested (after de-duplication).
    pub requested: usize,
}

impl ReductionOutcome {
    /// Fraction of requested statistics eliminated.
    pub fn reduction_fraction(&self) -> f64 {
        if self.requested == 0 {
            return 0.0;
        }
        1.0 - self.chosen.len() as f64 / self.requested as f64
    }
}

/// Histogram requirement: (db, table, leading column).
type HEntry = (String, String, String);
/// Density requirement: (db, table, column set).
type DEntry = (String, String, BTreeSet<String>);

fn h_entries(key: &StatKey) -> Vec<HEntry> {
    match key.columns.first() {
        Some(c) => vec![(key.database.clone(), key.table.clone(), c.clone())],
        None => vec![],
    }
}

fn d_entries(key: &StatKey) -> Vec<DEntry> {
    (1..=key.columns.len())
        .map(|len| {
            (
                key.database.clone(),
                key.table.clone(),
                key.columns[..len].iter().cloned().collect::<BTreeSet<_>>(),
            )
        })
        .collect()
}

/// Run the §5.2 greedy reduction over `required`, consulting `existing`
/// so that statistics whose information the server already holds are not
/// re-created at all.
pub fn reduce_statistics(required: &[StatKey], existing: &StatisticsManager) -> ReductionOutcome {
    // de-duplicate requests while preserving order
    let mut requested: Vec<StatKey> = Vec::new();
    for k in required {
        if !requested.contains(k) {
            requested.push(k.clone());
        }
    }

    // Step 1: H-List and D-List of *uncovered* requirements.
    let mut h_list: BTreeSet<HEntry> = BTreeSet::new();
    let mut d_list: BTreeSet<DEntry> = BTreeSet::new();
    for key in &requested {
        for h in h_entries(key) {
            if !existing.has_histogram(&h.0, &h.1, &h.2) {
                h_list.insert(h);
            }
        }
        for d in d_entries(key) {
            let cols: Vec<String> = d.2.iter().cloned().collect();
            if !existing.has_density(&d.0, &d.1, &cols) {
                d_list.insert(d);
            }
        }
    }

    // Steps 2–4: greedy covering.
    let mut remaining: Vec<StatKey> = requested.clone();
    let mut chosen = Vec::new();
    while !(h_list.is_empty() && d_list.is_empty()) {
        let (best_idx, best_cover) = remaining
            .iter()
            .enumerate()
            .map(|(i, key)| {
                let hc = h_entries(key).iter().filter(|h| h_list.contains(*h)).count();
                let dc = d_entries(key).iter().filter(|d| d_list.contains(*d)).count();
                (i, hc + dc)
            })
            .max_by_key(|&(i, cover)| {
                // break ties toward *narrower* statistics (equal information
                // for less creation work — matches the paper's Example 3
                // choosing (B) over (B,A)), then earlier request order
                (cover, std::cmp::Reverse(remaining[i].columns.len()), std::cmp::Reverse(i))
            })
            .expect("non-empty requirement lists imply a remaining candidate");
        if best_cover == 0 {
            // cannot happen if lists were built from `remaining`, but keep
            // the loop total in the face of future changes
            break;
        }
        let key = remaining.swap_remove(best_idx);
        for h in h_entries(&key) {
            h_list.remove(&h);
        }
        for d in d_entries(&key) {
            d_list.remove(&d);
        }
        chosen.push(key);
    }

    ReductionOutcome { chosen, requested: requested.len() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(cols: &[&str]) -> StatKey {
        StatKey::new("db", "t", cols)
    }

    #[test]
    fn paper_example_3() {
        // Indexes on (A), (B), (A,B), (B,A), (A,B,C): creating only
        // (A,B,C) and (B) yields the same information.
        let required = vec![
            key(&["a"]),
            key(&["b"]),
            key(&["a", "b"]),
            key(&["b", "a"]),
            key(&["a", "b", "c"]),
        ];
        let out = reduce_statistics(&required, &StatisticsManager::new());
        assert_eq!(out.requested, 5);
        let mut chosen = out.chosen.clone();
        chosen.sort();
        assert_eq!(chosen, vec![key(&["a", "b", "c"]), key(&["b"])]);
        assert!((out.reduction_fraction() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn greedy_picks_largest_first() {
        let required = vec![key(&["a", "b", "c"]), key(&["a"]), key(&["a", "b"])];
        let out = reduce_statistics(&required, &StatisticsManager::new());
        assert_eq!(out.chosen, vec![key(&["a", "b", "c"])]);
    }

    #[test]
    fn existing_stats_suppress_creation() {
        use crate::histogram::Histogram;
        use crate::statistic::Statistic;
        let mut mgr = StatisticsManager::new();
        mgr.add(Statistic {
            key: key(&["a", "b", "c"]),
            histogram: Histogram::build((0..5).map(dta_catalog::Value::Int).collect()),
            densities: vec![0.2, 0.1, 0.05],
            row_count: 5,
            sample_rows: 5,
        });
        // (a) and (a,b) are fully covered by the existing (a,b,c) stat
        let required = vec![key(&["a"]), key(&["a", "b"])];
        let out = reduce_statistics(&required, &mgr);
        assert!(out.chosen.is_empty(), "everything already covered: {:?}", out.chosen);

        // (b,a) still needs a *histogram on b* even though its densities
        // are all covered, so it must be created
        let out = reduce_statistics(&[key(&["b", "a"])], &mgr);
        assert_eq!(out.chosen, vec![key(&["b", "a"])]);
    }

    #[test]
    fn distinct_tables_do_not_interfere() {
        let required = vec![StatKey::new("db", "t1", &["a"]), StatKey::new("db", "t2", &["a"])];
        let out = reduce_statistics(&required, &StatisticsManager::new());
        assert_eq!(out.chosen.len(), 2);
    }

    #[test]
    fn duplicates_deduplicated() {
        let required = vec![key(&["a"]), key(&["a"]), key(&["a"])];
        let out = reduce_statistics(&required, &StatisticsManager::new());
        assert_eq!(out.requested, 1);
        assert_eq!(out.chosen.len(), 1);
    }

    #[test]
    fn empty_request() {
        let out = reduce_statistics(&[], &StatisticsManager::new());
        assert!(out.chosen.is_empty());
        assert_eq!(out.reduction_fraction(), 0.0);
    }

    #[test]
    fn chosen_covers_everything() {
        // property: whatever is chosen must cover every requirement
        let required =
            vec![key(&["a", "b"]), key(&["b", "c"]), key(&["c"]), key(&["d", "a"]), key(&["b"])];
        let out = reduce_statistics(&required, &StatisticsManager::new());
        let mut h: BTreeSet<_> = BTreeSet::new();
        let mut d: BTreeSet<_> = BTreeSet::new();
        for k in &out.chosen {
            h.extend(h_entries(k));
            d.extend(d_entries(k));
        }
        for k in &required {
            for e in h_entries(k) {
                assert!(h.contains(&e), "histogram {e:?} uncovered");
            }
            for e in d_entries(k) {
                assert!(d.contains(&e), "density {e:?} uncovered");
            }
        }
    }
}
