//! Multi-column statistics built by page sampling.

use crate::histogram::Histogram;
use dta_catalog::Value;
use dta_storage::{TableData, WorkCounter};
use std::collections::HashSet;

/// Default sampling fraction for `CREATE STATISTICS ... WITH SAMPLE`.
pub const DEFAULT_SAMPLE_FRACTION: f64 = 0.10;

/// Identity of a statistic: which database/table/column sequence it is on.
///
/// Column *order* matters for the histogram (leading column) but density
/// lookups are order-independent, which is exactly the structure §5.2's
/// reduction algorithm exploits.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StatKey {
    pub database: String,
    pub table: String,
    pub columns: Vec<String>,
}

impl StatKey {
    /// Construct a key.
    pub fn new(database: &str, table: &str, columns: &[impl AsRef<str>]) -> Self {
        Self {
            database: database.to_string(),
            table: table.to_string(),
            columns: columns.iter().map(|c| c.as_ref().to_string()).collect(),
        }
    }
}

/// A statistic: histogram on the leading column + densities per prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct Statistic {
    pub key: StatKey,
    /// Histogram over the leading column.
    pub histogram: Histogram,
    /// `densities[i]` is the density of the prefix `columns[..=i]`:
    /// `1 / distinct-count` of that column set (SQL Server's definition —
    /// the average fraction of duplicates).
    pub densities: Vec<f64>,
    /// Logical row count of the table when the statistic was built.
    pub row_count: u64,
    /// Number of rows in the sample the statistic was built from.
    pub sample_rows: u64,
}

impl Statistic {
    /// Density (1/distinct) for the full column sequence, at sample scale.
    pub fn full_density(&self) -> f64 {
        *self.densities.last().unwrap_or(&1.0)
    }

    /// Estimated distinct count of the prefix `columns[..=i]` at
    /// *population* scale: the sample-level count is extrapolated.
    pub fn distinct_of_prefix(&self, i: usize) -> f64 {
        let d = self.densities.get(i).copied().unwrap_or(1.0);
        let d_sample = (1.0 / d.max(1e-12)).max(1.0);
        extrapolate_distinct(d_sample, self.sample_rows, self.row_count)
    }
}

/// Extrapolate a distinct count observed in a sample to the population.
///
/// The two regimes with a smooth blend between them:
/// * nearly every sampled value distinct (`f = d/n → 1`) — the column is
///   key-like, so distincts grow linearly with the table: `d ≈ f·N`;
/// * few distinct values (`f → 0`) — the domain is saturated (a
///   categorical column): the sample already saw everything, `d` stays.
pub fn extrapolate_distinct(d_sample: f64, sample_rows: u64, population: u64) -> f64 {
    let n = sample_rows as f64;
    let big_n = population as f64;
    if n <= 0.0 || big_n <= n {
        return d_sample.clamp(1.0, big_n.max(1.0));
    }
    let f = (d_sample / n).clamp(0.0, 1.0);
    // blend exponent: 0 at f<=0.05 (no scaling), 1 at f>=0.5 (full linear)
    let t = ((f - 0.05) / 0.45).clamp(0.0, 1.0);
    let scaled = d_sample * (big_n / n).powf(t);
    scaled.clamp(1.0, big_n)
}

/// Build a statistic on `columns` of `data` by sampling pages.
///
/// Page reads are charged to `work`, making statistic creation cost
/// proportional to table size — the property that makes picking the
/// *largest remaining* statistic the right greedy move in §5.2.
pub fn build_statistic(
    key: StatKey,
    data: &TableData,
    sample_fraction: f64,
    rng: &mut impl rand::Rng,
    work: &WorkCounter,
) -> Statistic {
    let col_idx: Vec<Option<usize>> = key.columns.iter().map(|c| data.column_index(c)).collect();
    let (rows, pages) = data.sample_rows_by_page(sample_fraction, rng);
    work.read_pages(pages);
    work.cpu(rows.len() as u64);

    // histogram over the leading column
    let leading_values: Vec<Value> = match col_idx.first().copied().flatten() {
        Some(ci) => rows.iter().map(|&r| data.cell(r, ci).clone()).collect(),
        None => Vec::new(),
    };
    let histogram = Histogram::build(leading_values);

    // densities per leading prefix via distinct counting on the sample
    let mut densities = Vec::with_capacity(key.columns.len());
    for prefix_len in 1..=key.columns.len() {
        let idxs: Vec<usize> = col_idx[..prefix_len].iter().filter_map(|o| *o).collect();
        if idxs.len() < prefix_len || rows.is_empty() {
            densities.push(1.0);
            continue;
        }
        let mut seen: HashSet<Vec<&Value>> = HashSet::with_capacity(rows.len());
        for &r in &rows {
            seen.insert(idxs.iter().map(|&c| data.cell(r, c)).collect());
        }
        densities.push(1.0 / seen.len().max(1) as f64);
    }

    Statistic {
        key,
        histogram,
        densities,
        row_count: data.logical_rows(),
        sample_rows: rows.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_catalog::{Column, ColumnType, Table};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data() -> TableData {
        let t = Table::new(
            "t",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("b", ColumnType::Int),
                Column::new("c", ColumnType::Str(10)),
            ],
        );
        let mut d = TableData::new(&t);
        for i in 0..2000i64 {
            d.push_row(vec![
                Value::Int(i % 100),               // 100 distinct
                Value::Int(i % 10),                // 10 distinct
                Value::Str(format!("s{}", i % 4)), // 4 distinct
            ]);
        }
        d
    }

    #[test]
    fn densities_reflect_distincts() {
        let d = data();
        let w = WorkCounter::default();
        let mut rng = StdRng::seed_from_u64(1);
        let s = build_statistic(
            StatKey::new("db", "t", &["a", "b"]),
            &d,
            1.0, // full scan for exactness
            &mut rng,
            &w,
        );
        assert_eq!(s.densities.len(), 2);
        assert!((s.distinct_of_prefix(0) - 100.0).abs() < 1.0);
        // (a, b) pairs: lcm structure gives 100 distinct pairs
        assert!((s.distinct_of_prefix(1) - 100.0).abs() < 1.0);
        assert_eq!(s.row_count, 2000);
    }

    #[test]
    fn sampling_charges_io() {
        let d = data();
        let w = WorkCounter::default();
        let mut rng = StdRng::seed_from_u64(1);
        let before = w.snapshot();
        build_statistic(StatKey::new("db", "t", &["a"]), &d, 0.2, &mut rng, &w);
        let delta = w.snapshot().since(before);
        assert!(delta.pages_read >= 1);
        assert!(delta.pages_read <= d.materialized_pages());
    }

    #[test]
    fn sampled_histogram_close_to_truth() {
        let d = data();
        let w = WorkCounter::default();
        let mut rng = StdRng::seed_from_u64(42);
        let s = build_statistic(StatKey::new("db", "t", &["a"]), &d, 0.3, &mut rng, &w);
        // a is uniform over 0..100; P(a < 50) should be ~0.5
        let sel = s.histogram.selectivity_lt(&Value::Int(50), false);
        assert!((sel - 0.5).abs() < 0.12, "sel={sel}");
    }

    #[test]
    fn missing_column_produces_degenerate_stat() {
        let d = data();
        let w = WorkCounter::default();
        let mut rng = StdRng::seed_from_u64(1);
        let s = build_statistic(StatKey::new("db", "t", &["zzz"]), &d, 0.5, &mut rng, &w);
        assert!(s.histogram.is_empty());
        assert_eq!(s.densities, vec![1.0]);
    }

    #[test]
    fn stat_key_identity() {
        let k1 = StatKey::new("db", "t", &["a", "b"]);
        let k2 = StatKey::new("db", "t", &["b", "a"]);
        assert_ne!(k1, k2, "column order is part of the key");
    }
}
