//! Statistics subsystem.
//!
//! Mirrors the statistical machinery DTA relies on (§5.2 of the paper):
//! when SQL Server creates a statistic on columns `(A, B, C)` it builds a
//! **histogram on the leading column only** and **density information for
//! each leading prefix** (`(A)`, `(A,B)`, `(A,B,C)`), where density is
//! order-independent (`Density(A,B) = Density(B,A)`). Statistics are
//! created by sampling pages of the table, so creation cost is dominated
//! by table size, not by how many columns the statistic has — the two
//! facts the paper's *reduced statistics creation* algorithm exploits.
//!
//! This crate provides:
//! * [`histogram::Histogram`] — equi-depth histograms with range/equality
//!   selectivity estimation;
//! * [`statistic::Statistic`] — a multi-column statistic (histogram +
//!   density vector), built by page sampling with work accounting;
//! * [`manager::StatisticsManager`] — the per-server statistics cache with
//!   prefix-aware lookup;
//! * [`reduction`] — the §5.2 greedy H-List/D-List covering algorithm.

pub mod histogram;
pub mod manager;
pub mod reduction;
pub mod retry;
pub mod statistic;

pub use histogram::Histogram;
pub use manager::StatisticsManager;
pub use reduction::{reduce_statistics, ReductionOutcome};
pub use retry::RetryPolicy;
pub use statistic::{build_statistic, StatKey, Statistic, DEFAULT_SAMPLE_FRACTION};
