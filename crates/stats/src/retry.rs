//! Bounded retry with deterministic backoff *accounting*.
//!
//! The robustness layer retries transiently-failing server calls
//! (what-if optimization, statistics creation). Real backoff would
//! sleep; that would make runs wall-clock-dependent and therefore
//! irreproducible, so the policy instead *accounts* the backoff it
//! would have waited — exponential in the attempt number — and the
//! session reports the accumulated units. Same fault schedule ⇒ same
//! retry count ⇒ same backoff units, bit for bit.

/// Bounded-retry policy: how many attempts a transiently-failing call
/// gets, and how backoff units accrue between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per call (first try + retries). Must be ≥ 1.
    pub max_attempts: u32,
    /// Backoff units accounted before retry `i` (0-based) are
    /// `backoff_base_units << i` (exponential, saturating).
    pub backoff_base_units: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, backoff_base_units: 1 }
    }
}

impl RetryPolicy {
    /// Backoff units accounted after failed attempt `attempt` (0-based).
    pub fn backoff_units(&self, attempt: u32) -> u64 {
        self.backoff_base_units.checked_shl(attempt).unwrap_or(u64::MAX)
    }

    /// Whether another attempt is allowed after `attempt` (0-based) failed.
    pub fn allows_retry(&self, attempt: u32) -> bool {
        attempt + 1 < self.max_attempts.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_saturating() {
        let p = RetryPolicy { max_attempts: 4, backoff_base_units: 3 };
        assert_eq!(p.backoff_units(0), 3);
        assert_eq!(p.backoff_units(1), 6);
        assert_eq!(p.backoff_units(2), 12);
        assert_eq!(p.backoff_units(200), u64::MAX, "shift overflow saturates");
    }

    #[test]
    fn retry_window_is_bounded() {
        let p = RetryPolicy { max_attempts: 3, backoff_base_units: 1 };
        assert!(p.allows_retry(0));
        assert!(p.allows_retry(1));
        assert!(!p.allows_retry(2));
        let degenerate = RetryPolicy { max_attempts: 0, backoff_base_units: 1 };
        assert!(!degenerate.allows_retry(0), "max_attempts=0 behaves like 1");
    }
}
