//! Equi-depth histograms with selectivity estimation.

use dta_catalog::Value;

/// Maximum number of buckets, matching SQL Server's ~200-step histograms.
pub const MAX_BUCKETS: usize = 200;

/// One histogram bucket: values in `(lower, upper]` where `lower` is the
/// previous bucket's `upper` (the first bucket's lower bound is the
/// column minimum, inclusive).
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    /// Inclusive upper bound of the bucket.
    pub upper: Value,
    /// Fraction of non-null rows that fall in the bucket.
    pub fraction: f64,
    /// Estimated number of distinct values in the bucket.
    pub distinct: f64,
    /// Fraction of non-null rows exactly equal to `upper` (SQL Server's
    /// EQ_ROWS), which keeps heavy hitters accurate.
    pub upper_fraction: f64,
}

/// An equi-depth histogram over the non-null values of one column.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Histogram {
    /// Minimum non-null value (inclusive lower bound of the first bucket).
    min: Option<Value>,
    buckets: Vec<Bucket>,
    /// Fraction of rows that are NULL.
    null_fraction: f64,
}

impl Histogram {
    /// Build an equi-depth histogram from a sample of values. The values
    /// need not be sorted. NULLs are counted into `null_fraction` and
    /// excluded from the buckets.
    pub fn build(mut values: Vec<Value>) -> Self {
        let total = values.len();
        if total == 0 {
            return Self::default();
        }
        values.sort_unstable();
        let nulls = values.iter().take_while(|v| v.is_null()).count();
        let non_null = &values[nulls..];
        let null_fraction = nulls as f64 / total as f64;
        if non_null.is_empty() {
            return Self { min: None, buckets: Vec::new(), null_fraction };
        }
        let n = non_null.len();
        let n_buckets = n.min(MAX_BUCKETS);
        let per_bucket = n as f64 / n_buckets as f64;
        let mut buckets = Vec::with_capacity(n_buckets);
        let mut start = 0usize;
        for b in 0..n_buckets {
            if start >= n {
                break;
            }
            let mut end = (((b + 1) as f64) * per_bucket).round() as usize;
            end = end.clamp(start + 1, n);
            // extend the bucket so equal values never straddle a boundary
            while end < n && non_null[end] == non_null[end - 1] {
                end += 1;
            }
            let slice = &non_null[start..end];
            let mut distinct = 1usize;
            for w in slice.windows(2) {
                if w[0] != w[1] {
                    distinct += 1;
                }
            }
            let upper = slice[slice.len() - 1].clone();
            let upper_count = slice.iter().rev().take_while(|v| **v == upper).count();
            buckets.push(Bucket {
                upper,
                fraction: slice.len() as f64 / n as f64,
                distinct: distinct as f64,
                upper_fraction: upper_count as f64 / n as f64,
            });
            start = end;
            if start >= n {
                break;
            }
        }
        Self { min: Some(non_null[0].clone()), buckets, null_fraction }
    }

    /// True if the histogram carries no value information.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Fraction of rows that are NULL.
    pub fn null_fraction(&self) -> f64 {
        self.null_fraction
    }

    /// Estimated total number of distinct non-null values.
    pub fn distinct_count(&self) -> f64 {
        self.buckets.iter().map(|b| b.distinct).sum::<f64>().max(1.0)
    }

    /// Minimum non-null value.
    pub fn min_value(&self) -> Option<&Value> {
        self.min.as_ref()
    }

    /// Maximum non-null value.
    pub fn max_value(&self) -> Option<&Value> {
        self.buckets.last().map(|b| &b.upper)
    }

    /// Selectivity of `column = v` among all rows.
    pub fn selectivity_eq(&self, v: &Value) -> f64 {
        if self.is_empty() {
            return fallback::EQ;
        }
        if v.is_null() {
            return self.null_fraction;
        }
        let non_null = 1.0 - self.null_fraction;
        match self.bucket_of(v) {
            Some(i) => non_null * self.raw_eq(i, v),
            None => 0.0,
        }
    }

    /// Fraction of *non-null* rows equal to `v`, given `v` falls in bucket
    /// `i`. Exact for bucket boundary values, uniform over the interior.
    fn raw_eq(&self, i: usize, v: &Value) -> f64 {
        let b = &self.buckets[i];
        if *v == b.upper {
            b.upper_fraction
        } else {
            (b.fraction - b.upper_fraction).max(0.0) / (b.distinct - 1.0).max(1.0)
        }
    }

    /// Selectivity of `column < v` (or `<=` when `inclusive`).
    pub fn selectivity_lt(&self, v: &Value, inclusive: bool) -> f64 {
        if self.is_empty() {
            return fallback::RANGE;
        }
        if v.is_null() {
            return 0.0;
        }
        let non_null = 1.0 - self.null_fraction;
        let min = self.min.as_ref().expect("non-empty histogram has min");
        if v < min {
            return 0.0;
        }
        let mut acc = 0.0;
        let mut lower = min.clone();
        for (i, b) in self.buckets.iter().enumerate() {
            if *v > b.upper {
                acc += b.fraction;
                lower = b.upper.clone();
                continue;
            }
            // v falls inside this bucket: interpolate over the interior
            if *v == b.upper {
                acc += b.fraction - b.upper_fraction;
            } else {
                let within = interpolate(&lower, &b.upper, v);
                acc += (b.fraction - b.upper_fraction).max(0.0) * within;
            }
            if inclusive {
                acc += self.raw_eq(i, v);
            }
            return (acc * non_null).clamp(0.0, 1.0);
        }
        // v beyond the max
        (acc * non_null).clamp(0.0, 1.0)
    }

    /// Selectivity of `column > v` (or `>=` when `inclusive`).
    pub fn selectivity_gt(&self, v: &Value, inclusive: bool) -> f64 {
        if self.is_empty() {
            return fallback::RANGE;
        }
        if v.is_null() {
            return 0.0;
        }
        let non_null = 1.0 - self.null_fraction;
        let le = self.selectivity_lt(v, true);
        let gt = (non_null - le).max(0.0);
        if inclusive {
            (gt + self.selectivity_eq(v)).clamp(0.0, 1.0)
        } else {
            gt.clamp(0.0, 1.0)
        }
    }

    /// Selectivity of `low <= column <= high` style ranges.
    pub fn selectivity_between(&self, low: &Value, high: &Value) -> f64 {
        if self.is_empty() {
            return fallback::RANGE;
        }
        let le_high = self.selectivity_lt(high, true);
        let lt_low = self.selectivity_lt(low, false);
        (le_high - lt_low).clamp(0.0, 1.0)
    }

    /// Approximate quantile: the smallest bucket upper bound at or above
    /// cumulative non-null fraction `q` (clamped to `[0, 1]`).
    pub fn quantile(&self, q: f64) -> Option<&Value> {
        if self.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let mut acc = 0.0;
        for b in &self.buckets {
            acc += b.fraction;
            if acc >= q {
                return Some(&b.upper);
            }
        }
        self.max_value()
    }

    /// Index of the bucket containing `v`, if any.
    fn bucket_of(&self, v: &Value) -> Option<usize> {
        let min = self.min.as_ref()?;
        if v < min {
            return None;
        }
        self.buckets.iter().position(|b| v <= &b.upper)
    }
}

/// Linear interpolation of `v`'s position within `(lower, upper]`.
/// Numeric values interpolate proportionally; other types assume the
/// midpoint.
fn interpolate(lower: &Value, upper: &Value, v: &Value) -> f64 {
    match (lower.as_f64(), upper.as_f64(), v.as_f64()) {
        (Some(lo), Some(hi), Some(x)) if hi > lo => ((x - lo) / (hi - lo)).clamp(0.0, 1.0),
        _ => {
            if let (Value::Str(lo), Value::Str(hi), Value::Str(x)) = (lower, upper, v) {
                // crude lexicographic interpolation on the first differing byte
                let key = |s: &str| s.bytes().next().unwrap_or(0) as f64;
                let (lo, hi, x) = (key(lo), key(hi), key(x));
                if hi > lo {
                    return ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
                }
            }
            0.5
        }
    }
}

/// Selectivity fallbacks used when no histogram information is available,
/// mirroring the magic constants classic optimizers use.
pub mod fallback {
    /// Equality predicate without statistics.
    pub const EQ: f64 = 0.05;
    /// Range predicate without statistics.
    pub const RANGE: f64 = 0.33;
    /// LIKE predicate without statistics.
    pub const LIKE: f64 = 0.10;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(vals: impl IntoIterator<Item = i64>) -> Vec<Value> {
        vals.into_iter().map(Value::Int).collect()
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::build(vec![]);
        assert!(h.is_empty());
        assert_eq!(h.selectivity_eq(&Value::Int(1)), fallback::EQ);
        assert_eq!(h.selectivity_lt(&Value::Int(1), false), fallback::RANGE);
    }

    #[test]
    fn uniform_range_estimates() {
        // 0..1000 uniform
        let h = Histogram::build(ints(0..1000));
        let s = h.selectivity_lt(&Value::Int(500), false);
        assert!((s - 0.5).abs() < 0.05, "sel={s}");
        let s = h.selectivity_between(&Value::Int(250), &Value::Int(750));
        assert!((s - 0.5).abs() < 0.05, "sel={s}");
        let s = h.selectivity_gt(&Value::Int(900), false);
        assert!((s - 0.1).abs() < 0.05, "sel={s}");
    }

    #[test]
    fn equality_estimates() {
        let h = Histogram::build(ints((0..100).flat_map(|i| std::iter::repeat_n(i, 10))));
        // 1000 rows, 100 distinct -> eq sel ~ 1/100
        let s = h.selectivity_eq(&Value::Int(42));
        assert!((s - 0.01).abs() < 0.01, "sel={s}");
    }

    #[test]
    fn out_of_range_values() {
        let h = Histogram::build(ints(10..20));
        assert_eq!(h.selectivity_eq(&Value::Int(5)), 0.0);
        assert_eq!(h.selectivity_lt(&Value::Int(5), false), 0.0);
        assert!(h.selectivity_gt(&Value::Int(25), false).abs() < 1e-9);
        assert!((h.selectivity_lt(&Value::Int(100), false) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nulls_tracked() {
        let mut vals = ints(0..90);
        vals.extend(std::iter::repeat_n(Value::Null, 10));
        let h = Histogram::build(vals);
        assert!((h.null_fraction() - 0.1).abs() < 1e-9);
        assert!((h.selectivity_eq(&Value::Null) - 0.1).abs() < 1e-9);
        // all non-null rows are < 100
        assert!((h.selectivity_lt(&Value::Int(100), false) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn skewed_data_distinct_counts() {
        // one heavy value + tail
        let mut vals = ints(std::iter::repeat_n(7, 900));
        vals.extend(ints(0..100));
        let h = Histogram::build(vals);
        let heavy = h.selectivity_eq(&Value::Int(7));
        assert!(heavy > 0.3, "heavy={heavy}");
        assert!(h.distinct_count() >= 90.0);
    }

    #[test]
    fn bucket_cap_respected() {
        let h = Histogram::build(ints(0..10_000));
        assert!(h.bucket_count() <= MAX_BUCKETS);
        assert!(h.bucket_count() >= MAX_BUCKETS / 2);
    }

    #[test]
    fn string_histograms() {
        let vals: Vec<Value> = ["apple", "banana", "cherry", "date", "fig", "grape"]
            .iter()
            .map(|s| Value::Str(s.to_string()))
            .collect();
        let h = Histogram::build(vals);
        let s = h.selectivity_lt(&Value::Str("d".into()), false);
        assert!(s > 0.2 && s < 0.9, "sel={s}");
        assert_eq!(h.max_value(), Some(&Value::Str("grape".into())));
    }

    #[test]
    fn fractions_sum_to_one() {
        let h = Histogram::build(ints((0..5000).map(|i| i % 937)));
        let sum: f64 = (0..h.bucket_count()).map(|i| h.buckets[i].fraction).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn duplicates_do_not_straddle_buckets() {
        // a value with huge frequency must land in a single bucket
        let mut vals = ints(0..300);
        vals.extend(ints(std::iter::repeat_n(150, 500)));
        let h = Histogram::build(vals);
        let s = h.selectivity_eq(&Value::Int(150));
        assert!(s > 0.4, "sel={s}");
    }
}
