//! The per-server statistics cache.

use crate::histogram::Histogram;
use crate::statistic::{StatKey, Statistic};
use std::collections::{BTreeMap, BTreeSet};

/// Holds all statistics a server has created, with the two lookups the
/// optimizer needs: *histogram by leading column* and *density by column
/// set* (order-independent).
#[derive(Debug, Clone, Default)]
pub struct StatisticsManager {
    /// Statistics grouped by (database, table).
    by_table: BTreeMap<(String, String), Vec<Statistic>>,
    total: usize,
}

impl StatisticsManager {
    /// Empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of statistics held.
    pub fn count(&self) -> usize {
        self.total
    }

    /// Add (or replace) a statistic.
    pub fn add(&mut self, stat: Statistic) {
        let slot =
            self.by_table.entry((stat.key.database.clone(), stat.key.table.clone())).or_default();
        if let Some(existing) = slot.iter_mut().find(|s| s.key == stat.key) {
            *existing = stat;
        } else {
            slot.push(stat);
            self.total += 1;
        }
    }

    /// Exact-key lookup.
    pub fn get(&self, key: &StatKey) -> Option<&Statistic> {
        self.by_table
            .get(&(key.database.clone(), key.table.clone()))?
            .iter()
            .find(|s| s.key == *key)
    }

    /// All statistics on one table.
    pub fn for_table(&self, database: &str, table: &str) -> &[Statistic] {
        self.by_table
            .get(&(database.to_string(), table.to_string()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// A histogram over `column`: any statistic whose *leading* column is
    /// `column` provides one.
    pub fn histogram(&self, database: &str, table: &str, column: &str) -> Option<&Histogram> {
        self.for_table(database, table)
            .iter()
            .find(|s| s.key.columns.first().map(String::as_str) == Some(column))
            .map(|s| &s.histogram)
    }

    /// Density of a column *set* (order-independent): any statistic with a
    /// leading prefix whose set of columns equals `columns` provides it.
    pub fn density(&self, database: &str, table: &str, columns: &[String]) -> Option<f64> {
        let want: BTreeSet<&str> = columns.iter().map(String::as_str).collect();
        for s in self.for_table(database, table) {
            for (i, _) in s.key.columns.iter().enumerate() {
                let prefix: BTreeSet<&str> =
                    s.key.columns[..=i].iter().map(String::as_str).collect();
                if prefix == want {
                    return Some(s.densities[i]);
                }
                if prefix.len() > want.len() {
                    break;
                }
            }
        }
        None
    }

    /// Population-scale distinct count of a column *set*
    /// (order-independent), extrapolated from the sample.
    pub fn scaled_distinct(&self, database: &str, table: &str, columns: &[String]) -> Option<f64> {
        let want: BTreeSet<&str> = columns.iter().map(String::as_str).collect();
        for s in self.for_table(database, table) {
            for (i, _) in s.key.columns.iter().enumerate() {
                let prefix: BTreeSet<&str> =
                    s.key.columns[..=i].iter().map(String::as_str).collect();
                if prefix == want {
                    return Some(s.distinct_of_prefix(i));
                }
                if prefix.len() > want.len() {
                    break;
                }
            }
        }
        None
    }

    /// Whether a histogram on this column already exists.
    pub fn has_histogram(&self, database: &str, table: &str, column: &str) -> bool {
        self.histogram(database, table, column).is_some()
    }

    /// Whether density information for this column set already exists.
    pub fn has_density(&self, database: &str, table: &str, columns: &[String]) -> bool {
        self.density(database, table, columns).is_some()
    }

    /// True if creating `key` would add no statistical information that is
    /// not already held — used to skip redundant what-if statistics.
    pub fn covers(&self, key: &StatKey) -> bool {
        let Some(first) = key.columns.first() else {
            return true;
        };
        if !self.has_histogram(&key.database, &key.table, first) {
            return false;
        }
        for i in 0..key.columns.len() {
            let prefix: Vec<String> = key.columns[..=i].to_vec();
            if !self.has_density(&key.database, &key.table, &prefix) {
                return false;
            }
        }
        true
    }

    /// Export all statistics of one database (production → test server
    /// import, §5.3). This ships *no data*, just summaries.
    pub fn export_database(&self, database: &str) -> Vec<Statistic> {
        self.by_table
            .iter()
            .filter(|((db, _), _)| db == database)
            .flat_map(|(_, v)| v.iter().cloned())
            .collect()
    }

    /// Import previously exported statistics.
    pub fn import(&mut self, stats: Vec<Statistic>) {
        for s in stats {
            self.add(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(cols: &[&str], densities: &[f64]) -> Statistic {
        Statistic {
            key: StatKey::new("db", "t", cols),
            histogram: Histogram::build((0..10).map(dta_catalog::Value::Int).collect()),
            densities: densities.to_vec(),
            row_count: 10,
            sample_rows: 10,
        }
    }

    #[test]
    fn add_and_lookup() {
        let mut m = StatisticsManager::new();
        m.add(stat(&["a", "b", "c"], &[0.1, 0.01, 0.001]));
        assert_eq!(m.count(), 1);
        assert!(m.has_histogram("db", "t", "a"));
        assert!(!m.has_histogram("db", "t", "b"));
        assert_eq!(m.density("db", "t", &["a".into()]), Some(0.1));
        assert_eq!(m.density("db", "t", &["a".into(), "b".into()]), Some(0.01));
        // order-independence: Density(B,A) = Density(A,B)
        assert_eq!(m.density("db", "t", &["b".into(), "a".into()]), Some(0.01));
        assert_eq!(m.density("db", "t", &["b".into()]), None);
    }

    #[test]
    fn covers_detects_redundant_stats() {
        let mut m = StatisticsManager::new();
        m.add(stat(&["a", "b", "c"], &[0.1, 0.01, 0.001]));
        m.add(stat(&["b"], &[0.2]));
        // paper's Example 3: after creating (A,B,C) and (B), the stats
        // (A), (B,A) and (A,B) are all redundant
        assert!(m.covers(&StatKey::new("db", "t", &["a"])));
        assert!(m.covers(&StatKey::new("db", "t", &["a", "b"])));
        assert!(m.covers(&StatKey::new("db", "t", &["b", "a"])));
        assert!(m.covers(&StatKey::new("db", "t", &["a", "b", "c"])));
        // but (C) is not covered: no histogram on c
        assert!(!m.covers(&StatKey::new("db", "t", &["c"])));
        // and (B,C) is not: density {b,c} unknown
        assert!(!m.covers(&StatKey::new("db", "t", &["b", "c"])));
    }

    #[test]
    fn replace_same_key() {
        let mut m = StatisticsManager::new();
        m.add(stat(&["a"], &[0.5]));
        m.add(stat(&["a"], &[0.25]));
        assert_eq!(m.count(), 1);
        assert_eq!(m.density("db", "t", &["a".into()]), Some(0.25));
    }

    #[test]
    fn export_import() {
        let mut m = StatisticsManager::new();
        m.add(stat(&["a"], &[0.5]));
        let exported = m.export_database("db");
        assert_eq!(exported.len(), 1);
        assert!(m.export_database("other").is_empty());
        let mut m2 = StatisticsManager::new();
        m2.import(exported);
        assert!(m2.has_histogram("db", "t", "a"));
    }
}
