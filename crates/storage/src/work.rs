//! Work accounting: the deterministic clock of the simulation.
//!
//! All "running time", "tuning time", and "server overhead" figures in
//! the reproduced experiments are measured in *work units* accumulated
//! here, not in wall-clock seconds: one unit per page read/written plus a
//! small charge per CPU row operation. This keeps every experiment
//! deterministic and machine-independent while preserving the ratios the
//! paper reports (e.g. Figure 3's "% reduction in production server
//! overhead" and Table 3's speedups).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cost of one CPU row operation relative to one page I/O.
pub const CPU_OP_WEIGHT: f64 = 0.002;

/// Thread-safe accumulator of simulated work.
#[derive(Debug, Default)]
pub struct WorkCounter {
    pages_read: AtomicU64,
    pages_written: AtomicU64,
    cpu_ops: AtomicU64,
}

impl WorkCounter {
    /// New counter at zero, wrapped for sharing.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Record `n` page reads.
    pub fn read_pages(&self, n: u64) {
        // dta-lint: allow(R6): independent monotonic work tally; readers
        // consume point-in-time snapshots, nothing synchronizes on it.
        self.pages_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` page writes.
    pub fn write_pages(&self, n: u64) {
        // dta-lint: allow(R6): independent monotonic work tally; readers
        // consume point-in-time snapshots, nothing synchronizes on it.
        self.pages_written.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` CPU row operations (comparisons, hash probes, ...).
    pub fn cpu(&self, n: u64) {
        // dta-lint: allow(R6): independent monotonic work tally; readers
        // consume point-in-time snapshots, nothing synchronizes on it.
        self.cpu_ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot the current totals.
    pub fn snapshot(&self) -> WorkSnapshot {
        WorkSnapshot {
            // dta-lint: allow(R6): the three loads need no mutual ordering;
            // callers snapshot at quiescent points (before/after a run).
            pages_read: self.pages_read.load(Ordering::Relaxed),
            // dta-lint: allow(R6): same quiescent-point snapshot as above.
            pages_written: self.pages_written.load(Ordering::Relaxed),
            // dta-lint: allow(R6): same quiescent-point snapshot as above.
            cpu_ops: self.cpu_ops.load(Ordering::Relaxed),
        }
    }

    /// Total work units so far.
    pub fn work_units(&self) -> f64 {
        self.snapshot().work_units()
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        // dta-lint: allow(R6): reset happens between experiment phases with
        // no concurrent writers; relaxed stores suffice.
        self.pages_read.store(0, Ordering::Relaxed);
        // dta-lint: allow(R6): same phase-boundary reset as above.
        self.pages_written.store(0, Ordering::Relaxed);
        // dta-lint: allow(R6): same phase-boundary reset as above.
        self.cpu_ops.store(0, Ordering::Relaxed);
    }
}

/// An immutable snapshot of a [`WorkCounter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkSnapshot {
    pub pages_read: u64,
    pub pages_written: u64,
    pub cpu_ops: u64,
}

impl WorkSnapshot {
    /// Scalar work units: pages + weighted CPU operations.
    pub fn work_units(&self) -> f64 {
        (self.pages_read + self.pages_written) as f64 + self.cpu_ops as f64 * CPU_OP_WEIGHT
    }

    /// Work done between `earlier` and `self`.
    pub fn since(&self, earlier: WorkSnapshot) -> WorkSnapshot {
        WorkSnapshot {
            pages_read: self.pages_read - earlier.pages_read,
            pages_written: self.pages_written - earlier.pages_written,
            cpu_ops: self.cpu_ops - earlier.cpu_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_snapshots() {
        let w = WorkCounter::default();
        w.read_pages(10);
        w.write_pages(5);
        w.cpu(1000);
        let s = w.snapshot();
        assert_eq!(s.pages_read, 10);
        assert_eq!(s.pages_written, 5);
        assert_eq!(s.cpu_ops, 1000);
        assert!((s.work_units() - (15.0 + 1000.0 * CPU_OP_WEIGHT)).abs() < 1e-9);
    }

    #[test]
    fn since_computes_delta() {
        let w = WorkCounter::default();
        w.read_pages(3);
        let before = w.snapshot();
        w.read_pages(7);
        w.cpu(10);
        let delta = w.snapshot().since(before);
        assert_eq!(delta.pages_read, 7);
        assert_eq!(delta.cpu_ops, 10);
    }

    #[test]
    fn reset_zeroes() {
        let w = WorkCounter::default();
        w.read_pages(3);
        w.reset();
        assert_eq!(w.snapshot(), WorkSnapshot::default());
    }

    #[test]
    fn shared_across_threads() {
        let w = WorkCounter::shared();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let w = Arc::clone(&w);
                s.spawn(move || {
                    for _ in 0..100 {
                        w.read_pages(1);
                    }
                });
            }
        });
        assert_eq!(w.snapshot().pages_read, 400);
    }
}
