//! Storage substrate: a columnar table store with a page model,
//! page-based sampling, and work accounting.
//!
//! The paper's experiments are reported against SQL Server's storage
//! engine. This crate provides the closest laptop-scale equivalent the
//! rest of the system needs:
//!
//! * a **page model** ([`pages_for`], [`PAGE_SIZE`]) from which the
//!   optimizer's I/O costs and DTA's storage estimates are derived;
//! * **actual row storage** (column-major) that the execution engine runs
//!   over and that statistics are sampled from;
//! * a **logical scale factor** per table so that a small materialized row
//!   set can stand in for a multi-gigabyte production table: histograms
//!   and selectivities are scale-invariant, while page counts and storage
//!   sizes are reported at the logical scale;
//! * a [`WorkCounter`] that meters pages read/written and CPU row
//!   operations — the deterministic "elapsed time" unit used by the
//!   production/test-server overhead experiment (Figure 3) and by all
//!   running-time comparisons.

pub mod data;
pub mod work;

pub use data::{Store, TableData};
pub use work::{WorkCounter, WorkSnapshot};

/// Bytes per page, matching SQL Server's 8 KB pages.
pub const PAGE_SIZE: u64 = 8192;

/// Number of pages needed to store `rows` rows of `row_width` bytes.
/// Always at least 1 for a non-empty row count.
pub fn pages_for(rows: u64, row_width: u32) -> u64 {
    if rows == 0 {
        return 0;
    }
    let bytes = rows.saturating_mul(row_width.max(1) as u64);
    bytes.div_ceil(PAGE_SIZE).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_math() {
        assert_eq!(pages_for(0, 100), 0);
        assert_eq!(pages_for(1, 100), 1);
        assert_eq!(pages_for(82, 100), 2); // 8200 bytes -> 2 pages
        assert_eq!(pages_for(81, 100), 1); // 8100 bytes -> 1 page
        assert_eq!(pages_for(1_000_000, 100), 12_208);
    }

    #[test]
    fn zero_width_rows_still_occupy_space() {
        assert_eq!(pages_for(10, 0), 1);
    }
}
