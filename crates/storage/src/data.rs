//! Columnar table data and the store.

use crate::{pages_for, PAGE_SIZE};
use dta_catalog::{Table, Value};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeMap;

/// Materialized rows of one table, stored column-major.
///
/// A table also carries a *logical scale*: `logical_rows = rows * scale`.
/// Statistics built from the materialized rows (histogram bucket
/// fractions, densities as duplicate ratios) are scale-invariant, while
/// page counts and storage sizes are reported at the logical scale, which
/// lets a 10⁵-row materialization stand in for the paper's 10 GB TPC-H
/// database.
#[derive(Debug, Clone)]
pub struct TableData {
    column_names: Vec<String>,
    columns: Vec<Vec<Value>>,
    row_width: u32,
    scale: f64,
}

impl TableData {
    /// Empty data for a table definition.
    pub fn new(table: &Table) -> Self {
        Self {
            column_names: table.columns.iter().map(|c| c.name.clone()).collect(),
            columns: vec![Vec::new(); table.columns.len()],
            row_width: table.row_width(),
            scale: 1.0,
        }
    }

    /// Set the logical scale factor (≥ 1.0).
    pub fn set_scale(&mut self, scale: f64) {
        assert!(scale >= 1.0, "scale must be >= 1.0");
        self.scale = scale;
    }

    /// The logical scale factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Append one row. Panics if the arity does not match.
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
    }

    /// Number of materialized rows.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    /// Logical row count (materialized rows × scale).
    pub fn logical_rows(&self) -> u64 {
        (self.rows() as f64 * self.scale).round() as u64
    }

    /// Average row width in bytes.
    pub fn row_width(&self) -> u32 {
        self.row_width
    }

    /// Pages occupied at logical scale (heap, no indexes).
    pub fn logical_pages(&self) -> u64 {
        pages_for(self.logical_rows(), self.row_width)
    }

    /// Pages occupied by the materialized rows.
    pub fn materialized_pages(&self) -> u64 {
        pages_for(self.rows() as u64, self.row_width)
    }

    /// Logical size in bytes.
    pub fn logical_bytes(&self) -> u64 {
        self.logical_rows() * self.row_width as u64
    }

    /// Column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.column_names.iter().position(|c| c == name)
    }

    /// Column names in declaration order.
    pub fn column_names(&self) -> &[String] {
        &self.column_names
    }

    /// Values of one column.
    pub fn column(&self, idx: usize) -> &[Value] {
        &self.columns[idx]
    }

    /// Values of one column by name.
    pub fn column_by_name(&self, name: &str) -> Option<&[Value]> {
        self.column_index(name).map(|i| self.column(i))
    }

    /// One cell.
    pub fn cell(&self, row: usize, col: usize) -> &Value {
        &self.columns[col][row]
    }

    /// Materialize one row as a vector (allocates).
    pub fn row(&self, idx: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c[idx].clone()).collect()
    }

    /// Delete rows by index set (sorted or not); used by the DML engine.
    pub fn delete_rows(&mut self, mut indexes: Vec<usize>) {
        indexes.sort_unstable();
        indexes.dedup();
        for col in &mut self.columns {
            let mut keep = Vec::with_capacity(col.len() - indexes.len());
            let mut del_iter = indexes.iter().peekable();
            for (i, v) in col.drain(..).enumerate() {
                if del_iter.peek() == Some(&&i) {
                    del_iter.next();
                } else {
                    keep.push(v);
                }
            }
            *col = keep;
        }
    }

    /// Overwrite one cell; used by the DML engine.
    pub fn set_cell(&mut self, row: usize, col: usize, value: Value) {
        self.columns[col][row] = value;
    }

    /// Rows per page in the page model.
    pub fn rows_per_page(&self) -> u64 {
        (PAGE_SIZE / self.row_width.max(1) as u64).max(1)
    }

    /// Sample row indexes by *page*: picks a fraction of the pages and
    /// returns the indexes of all rows on those pages, mirroring how
    /// `CREATE STATISTICS ... WITH SAMPLE` reads whole pages. Returns the
    /// number of pages touched alongside the row indexes.
    pub fn sample_rows_by_page<R: Rng>(&self, fraction: f64, rng: &mut R) -> (Vec<usize>, u64) {
        let rows = self.rows();
        if rows == 0 {
            return (Vec::new(), 0);
        }
        let rpp = self.rows_per_page() as usize;
        let n_pages = rows.div_ceil(rpp);
        let target_pages = ((n_pages as f64 * fraction).ceil() as usize).clamp(1, n_pages);
        let mut pages: Vec<usize> = (0..n_pages).collect();
        pages.shuffle(rng);
        pages.truncate(target_pages);
        let mut out = Vec::with_capacity(target_pages * rpp);
        for p in pages {
            let start = p * rpp;
            let end = ((p + 1) * rpp).min(rows);
            out.extend(start..end);
        }
        (out, target_pages as u64)
    }
}

/// The store: table data keyed by `(database, table)`.
#[derive(Debug, Clone, Default)]
pub struct Store {
    tables: BTreeMap<(String, String), TableData>,
}

impl Store {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create (empty) data for a table. Replaces any existing data.
    pub fn create_table(&mut self, db: &str, table: &Table) {
        self.tables.insert((db.to_string(), table.name.clone()), TableData::new(table));
    }

    /// Access a table's data.
    pub fn table(&self, db: &str, table: &str) -> Option<&TableData> {
        self.tables.get(&(db.to_string(), table.to_string()))
    }

    /// Mutable access to a table's data.
    pub fn table_mut(&mut self, db: &str, table: &str) -> Option<&mut TableData> {
        self.tables.get_mut(&(db.to_string(), table.to_string()))
    }

    /// Iterate `(db, table)` keys.
    pub fn keys(&self) -> impl Iterator<Item = &(String, String)> {
        self.tables.keys()
    }

    /// Total logical bytes across all tables (the "database size" of
    /// Table 1).
    pub fn total_logical_bytes(&self) -> u64 {
        self.tables.values().map(|t| t.logical_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_catalog::{Column, ColumnType};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> Table {
        Table::new(
            "t",
            vec![Column::new("a", ColumnType::Int), Column::new("b", ColumnType::Str(20))],
        )
    }

    fn filled(n: usize) -> TableData {
        let mut d = TableData::new(&table());
        for i in 0..n {
            d.push_row(vec![Value::Int(i as i64), Value::Str(format!("s{i}"))]);
        }
        d
    }

    #[test]
    fn push_and_access() {
        let d = filled(10);
        assert_eq!(d.rows(), 10);
        assert_eq!(d.cell(3, 0), &Value::Int(3));
        assert_eq!(d.row(2), vec![Value::Int(2), Value::Str("s2".into())]);
        assert_eq!(d.column_by_name("a").unwrap().len(), 10);
        assert!(d.column_by_name("zzz").is_none());
    }

    #[test]
    fn scale_affects_logical_not_materialized() {
        let mut d = filled(100);
        assert_eq!(d.logical_rows(), 100);
        d.set_scale(1000.0);
        assert_eq!(d.rows(), 100);
        assert_eq!(d.logical_rows(), 100_000);
        assert_eq!(d.logical_bytes(), 100_000 * 24);
        assert!(d.logical_pages() > d.materialized_pages());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut d = filled(1);
        d.push_row(vec![Value::Int(1)]);
    }

    #[test]
    fn delete_rows_removes_correct_rows() {
        let mut d = filled(5);
        d.delete_rows(vec![3, 1, 3]);
        assert_eq!(d.rows(), 3);
        let a: Vec<_> = d.column(0).to_vec();
        assert_eq!(a, vec![Value::Int(0), Value::Int(2), Value::Int(4)]);
    }

    #[test]
    fn set_cell_updates() {
        let mut d = filled(3);
        d.set_cell(1, 0, Value::Int(99));
        assert_eq!(d.cell(1, 0), &Value::Int(99));
    }

    #[test]
    fn page_sampling_touches_whole_pages() {
        let d = filled(3000); // 24B rows -> 341 rows/page -> 9 pages
        let mut rng = StdRng::seed_from_u64(7);
        let (rows, pages) = d.sample_rows_by_page(0.3, &mut rng);
        assert!((1..=9).contains(&pages), "pages={pages}");
        assert!(!rows.is_empty());
        // all sampled indexes valid & unique
        let mut sorted = rows.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), rows.len());
        assert!(*sorted.last().unwrap() < 3000);
    }

    #[test]
    fn sampling_empty_table() {
        let d = TableData::new(&table());
        let mut rng = StdRng::seed_from_u64(7);
        let (rows, pages) = d.sample_rows_by_page(0.5, &mut rng);
        assert!(rows.is_empty());
        assert_eq!(pages, 0);
    }

    #[test]
    fn store_roundtrip() {
        let mut s = Store::new();
        let t = table();
        s.create_table("db1", &t);
        s.table_mut("db1", "t").unwrap().push_row(vec![Value::Int(1), Value::Str("x".into())]);
        assert_eq!(s.table("db1", "t").unwrap().rows(), 1);
        assert!(s.table("db2", "t").is_none());
        assert_eq!(s.total_logical_bytes(), 24);
    }
}
