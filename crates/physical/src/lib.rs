//! Physical design structures and configurations.
//!
//! This crate defines the vocabulary DTA reasons about (§2.1, §3, §4 of
//! the paper):
//!
//! * [`Index`] — clustered and non-clustered (optionally *covering* via
//!   included columns), optionally range-partitioned;
//! * [`MaterializedView`] — select-project-join views with optional
//!   grouping/aggregation, optionally range-partitioned;
//! * [`RangePartitioning`] — single-column range partitioning (what SQL
//!   Server 2005 supports) for tables, indexes, and views;
//! * [`Configuration`] — a set of structures, with validity checking
//!   (§6.2: a *valid* user-specified configuration), the **alignment**
//!   predicate (§4: a table and all of its indexes partitioned
//!   identically), and storage estimation against a [`SizingInfo`].

pub mod config;
pub mod index;
pub mod partitioning;
pub mod sizing;
pub mod view;

pub use config::{Configuration, ValidityError};
pub use index::{Index, IndexKind};
pub use partitioning::RangePartitioning;
pub use sizing::SizingInfo;
pub use view::{JoinPair, MaterializedView, QualifiedColumn, ViewAggregate};

/// Any physical design structure DTA can recommend.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PhysicalStructure {
    /// An index on a base table.
    Index(Index),
    /// A materialized view.
    View(MaterializedView),
    /// Range partitioning of a base table's heap.
    TablePartitioning { database: String, table: String, scheme: RangePartitioning },
}

impl PhysicalStructure {
    /// The database the structure lives in.
    pub fn database(&self) -> &str {
        match self {
            PhysicalStructure::Index(i) => &i.database,
            PhysicalStructure::View(v) => &v.database,
            PhysicalStructure::TablePartitioning { database, .. } => database,
        }
    }

    /// The base table the structure is attached to, if it is table-scoped.
    pub fn table(&self) -> Option<&str> {
        match self {
            PhysicalStructure::Index(i) => Some(&i.table),
            PhysicalStructure::View(_) => None,
            PhysicalStructure::TablePartitioning { table, .. } => Some(table),
        }
    }

    /// A stable descriptive name (derived, not stored).
    pub fn name(&self) -> String {
        match self {
            PhysicalStructure::Index(i) => i.name(),
            PhysicalStructure::View(v) => v.name(),
            PhysicalStructure::TablePartitioning { table, scheme, .. } => {
                format!("part_{table}_{}", scheme.column)
            }
        }
    }

    /// True for structures that occupy essentially no storage beyond the
    /// base data (clustered indexes, table partitioning) — the
    /// "non-redundant structures" of §3.
    pub fn is_non_redundant(&self) -> bool {
        match self {
            PhysicalStructure::Index(i) => i.kind == IndexKind::Clustered,
            PhysicalStructure::View(_) => false,
            PhysicalStructure::TablePartitioning { .. } => true,
        }
    }
}

impl std::fmt::Display for PhysicalStructure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_redundancy() {
        let clustered = PhysicalStructure::Index(Index::clustered("db", "t", &["a"]));
        let nc = PhysicalStructure::Index(Index::non_clustered("db", "t", &["a"], &[]));
        let part = PhysicalStructure::TablePartitioning {
            database: "db".into(),
            table: "t".into(),
            scheme: RangePartitioning::new("a", vec![dta_catalog::Value::Int(10)]),
        };
        assert!(clustered.is_non_redundant());
        assert!(!nc.is_non_redundant());
        assert!(part.is_non_redundant());
    }

    #[test]
    fn accessors() {
        let i = PhysicalStructure::Index(Index::non_clustered("db", "t", &["a"], &["b"]));
        assert_eq!(i.database(), "db");
        assert_eq!(i.table(), Some("t"));
        assert!(i.name().contains('t'));
    }
}
