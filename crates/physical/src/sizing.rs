//! Storage estimation for physical design structures.
//!
//! DTA's enumeration honors an optional storage bound (§2.1); the sizes
//! here are what that bound is checked against. Sizing needs facts the
//! physical crate does not own — logical row counts, column widths, and
//! view cardinality estimates — so callers supply a [`SizingInfo`]
//! (implemented by the server).

use crate::{Index, IndexKind, MaterializedView, PhysicalStructure};

/// Row-locator width carried by every non-clustered index entry (RID or
/// clustering key reference).
pub const ROW_LOCATOR_BYTES: u32 = 8;

/// Per-row B-tree overhead (slot array entry, record header).
pub const ROW_OVERHEAD_BYTES: u32 = 9;

/// Facts needed to size structures, supplied by the hosting server.
///
/// `Sync` so `&dyn SizingInfo` handles can cross the advisor's worker
/// threads (storage-bound checks run inside parallel enumeration).
pub trait SizingInfo: Sync {
    /// Logical row count of a base table.
    fn table_rows(&self, database: &str, table: &str) -> u64;
    /// Average width in bytes of a column.
    fn column_width(&self, database: &str, table: &str, column: &str) -> u32;
    /// Estimated row count of a materialized view (distinct groups for a
    /// grouped view, join cardinality for a join view).
    fn view_rows(&self, view: &MaterializedView) -> u64;
}

/// Estimated *incremental* storage of one structure in bytes — what it
/// consumes beyond the base data. Clustered indexes and table
/// partitioning are non-redundant and cost (approximately) nothing.
pub fn structure_bytes(s: &PhysicalStructure, info: &dyn SizingInfo) -> u64 {
    match s {
        PhysicalStructure::Index(ix) => index_bytes(ix, info),
        PhysicalStructure::View(v) => view_bytes(v, info),
        PhysicalStructure::TablePartitioning { .. } => 0,
    }
}

/// Incremental bytes of an index.
pub fn index_bytes(ix: &Index, info: &dyn SizingInfo) -> u64 {
    if ix.kind == IndexKind::Clustered {
        // reorganizes the heap; negligible extra storage
        return 0;
    }
    let rows = info.table_rows(&ix.database, &ix.table);
    let width: u32 =
        ix.leaf_columns().map(|c| info.column_width(&ix.database, &ix.table, c)).sum::<u32>()
            + ROW_LOCATOR_BYTES
            + ROW_OVERHEAD_BYTES;
    // ~70% leaf fill factor plus upper B-tree levels
    let leaf = rows.saturating_mul(width as u64);
    leaf + leaf / 3
}

/// Incremental bytes of a materialized view (its clustered storage).
pub fn view_bytes(v: &MaterializedView, info: &dyn SizingInfo) -> u64 {
    let rows = info.view_rows(v);
    // estimate width from produced columns: group-by/projected columns at
    // their base width, aggregates at 8 bytes each
    let mut width: u64 = 0;
    let produced = if v.is_grouped() { &v.group_by } else { &v.projected };
    for c in produced {
        width += info.column_width(&v.database, &c.table, &c.column) as u64;
    }
    width += 8 * v.aggregates.len() as u64;
    width += ROW_OVERHEAD_BYTES as u64;
    rows.saturating_mul(width.max(8))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::{JoinPair, QualifiedColumn, ViewAggregate};
    use dta_sql::AggFunc;

    struct Fixed;
    impl SizingInfo for Fixed {
        fn table_rows(&self, _d: &str, table: &str) -> u64 {
            match table {
                "big" => 1_000_000,
                _ => 1_000,
            }
        }
        fn column_width(&self, _d: &str, _t: &str, _c: &str) -> u32 {
            8
        }
        fn view_rows(&self, _v: &MaterializedView) -> u64 {
            500
        }
    }

    #[test]
    fn clustered_is_free() {
        let ix = Index::clustered("db", "big", &["a"]);
        assert_eq!(index_bytes(&ix, &Fixed), 0);
    }

    #[test]
    fn nonclustered_scales_with_rows_and_width() {
        let narrow = Index::non_clustered("db", "big", &["a"], &[]);
        let wide = Index::non_clustered("db", "big", &["a"], &["b", "c", "d"]);
        let nb = index_bytes(&narrow, &Fixed);
        let wb = index_bytes(&wide, &Fixed);
        assert!(nb > 0);
        assert!(wb > nb);
        let small = Index::non_clustered("db", "small", &["a"], &[]);
        assert!(index_bytes(&small, &Fixed) < nb);
    }

    #[test]
    fn view_sizes() {
        let v = MaterializedView::grouped(
            "db",
            &["big"],
            vec![],
            vec![QualifiedColumn::new("big", "g")],
            vec![ViewAggregate::column(AggFunc::Sum, QualifiedColumn::new("big", "x"))],
        );
        let bytes = view_bytes(&v, &Fixed);
        // 500 rows * (8 group col + 8 agg + 9 overhead)
        assert_eq!(bytes, 500 * 25);
    }

    #[test]
    fn table_partitioning_is_free() {
        let s = PhysicalStructure::TablePartitioning {
            database: "db".into(),
            table: "big".into(),
            scheme: crate::RangePartitioning::new("a", vec![dta_catalog::Value::Int(1)]),
        };
        assert_eq!(structure_bytes(&s, &Fixed), 0);
    }

    #[test]
    fn join_pair_normalization() {
        let a = JoinPair::new(QualifiedColumn::new("b", "y"), QualifiedColumn::new("a", "x"));
        let b = JoinPair::new(QualifiedColumn::new("a", "x"), QualifiedColumn::new("b", "y"));
        assert_eq!(a, b);
    }
}
