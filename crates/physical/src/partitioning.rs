//! Single-column range partitioning (§4).

use dta_catalog::Value;

/// A single-column range partitioning scheme: `boundaries` split the
/// column's domain into `boundaries.len() + 1` partitions. A row with
/// value `v` lands in the first partition whose boundary is `>= v`
/// (boundaries are *right-inclusive*), or the last partition otherwise.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RangePartitioning {
    /// The partitioning column.
    pub column: String,
    /// Ascending boundary values.
    pub boundaries: Vec<Value>,
}

impl RangePartitioning {
    /// Create a scheme; boundaries are sorted and de-duplicated.
    pub fn new(column: impl Into<String>, mut boundaries: Vec<Value>) -> Self {
        boundaries.sort();
        boundaries.dedup();
        Self { column: column.into().to_ascii_lowercase(), boundaries }
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// Partition index for a value.
    pub fn partition_of(&self, v: &Value) -> usize {
        self.boundaries.partition_point(|b| b < v)
    }

    /// Number of partitions a range predicate over the partitioning
    /// column must touch. `None` bounds are unbounded. This is the
    /// *partition elimination* the optimizer models: a selective range on
    /// the partitioning column scans only the matching partitions.
    pub fn partitions_touched(&self, low: Option<&Value>, high: Option<&Value>) -> usize {
        let first = match low {
            Some(v) => self.partition_of(v),
            None => 0,
        };
        let last = match high {
            Some(v) => self.partition_of(v),
            None => self.partition_count() - 1,
        };
        last.saturating_sub(first) + 1
    }

    /// Fraction of partitions touched by a range — the optimizer's
    /// partition-elimination factor in `(0, 1]`.
    pub fn elimination_fraction(&self, low: Option<&Value>, high: Option<&Value>) -> f64 {
        self.partitions_touched(low, high) as f64 / self.partition_count() as f64
    }
}

impl std::fmt::Display for RangePartitioning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RANGE({}) x{}", self.column, self.partition_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> RangePartitioning {
        RangePartitioning::new("d", vec![Value::Int(10), Value::Int(20), Value::Int(30)])
    }

    #[test]
    fn boundaries_sorted_and_deduped() {
        let p = RangePartitioning::new("A", vec![Value::Int(20), Value::Int(10), Value::Int(20)]);
        assert_eq!(p.column, "a");
        assert_eq!(p.boundaries, vec![Value::Int(10), Value::Int(20)]);
        assert_eq!(p.partition_count(), 3);
    }

    #[test]
    fn partition_assignment() {
        let p = scheme();
        assert_eq!(p.partition_of(&Value::Int(5)), 0);
        assert_eq!(p.partition_of(&Value::Int(10)), 0); // right-inclusive
        assert_eq!(p.partition_of(&Value::Int(11)), 1);
        assert_eq!(p.partition_of(&Value::Int(30)), 2);
        assert_eq!(p.partition_of(&Value::Int(31)), 3);
    }

    #[test]
    fn partitions_touched_by_ranges() {
        let p = scheme(); // 4 partitions
        assert_eq!(p.partitions_touched(None, None), 4);
        assert_eq!(p.partitions_touched(Some(&Value::Int(5)), Some(&Value::Int(5))), 1);
        assert_eq!(p.partitions_touched(Some(&Value::Int(5)), Some(&Value::Int(15))), 2);
        assert_eq!(p.partitions_touched(Some(&Value::Int(25)), None), 2);
        assert_eq!(p.partitions_touched(None, Some(&Value::Int(10))), 1);
    }

    #[test]
    fn elimination_fraction_bounds() {
        let p = scheme();
        let f = p.elimination_fraction(Some(&Value::Int(5)), Some(&Value::Int(5)));
        assert!((f - 0.25).abs() < 1e-9);
        assert_eq!(p.elimination_fraction(None, None), 1.0);
    }

    #[test]
    fn string_boundaries() {
        // quarterly partitioning by ISO date strings (the paper's month vs
        // quarter scenario, §6.2)
        let p = RangePartitioning::new(
            "o_orderdate",
            vec![
                Value::Str("1995-03-31".into()),
                Value::Str("1995-06-30".into()),
                Value::Str("1995-09-30".into()),
            ],
        );
        assert_eq!(p.partition_of(&Value::Str("1995-05-15".into())), 1);
        assert_eq!(
            p.partitions_touched(
                Some(&Value::Str("1995-01-01".into())),
                Some(&Value::Str("1995-04-01".into()))
            ),
            2
        );
    }
}
