//! Indexes: clustered, non-clustered, covering, optionally partitioned.

use crate::partitioning::RangePartitioning;

/// Whether an index is the table's clustering order or a secondary
/// structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// The table's rows are stored in key order; at most one per table;
    /// occupies no storage beyond the base data.
    Clustered,
    /// A separate B-tree of (key columns, included columns, row locator).
    NonClustered,
}

/// An index on a base table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Index {
    pub database: String,
    pub table: String,
    pub kind: IndexKind,
    /// Key columns in order; seeks use a leading prefix of these.
    pub key_columns: Vec<String>,
    /// Non-key columns carried in the leaf level (covering payload).
    /// Always empty for clustered indexes, which carry every column.
    pub included_columns: Vec<String>,
    /// Range partitioning of the index, if any.
    pub partitioning: Option<RangePartitioning>,
    /// Whether the index enforces a uniqueness/RI constraint — such
    /// indexes survive in the "raw" configuration and are never dropped.
    pub enforces_constraint: bool,
}

impl Index {
    /// A clustered index.
    pub fn clustered(database: &str, table: &str, keys: &[&str]) -> Self {
        Self {
            database: database.to_ascii_lowercase(),
            table: table.to_ascii_lowercase(),
            kind: IndexKind::Clustered,
            key_columns: keys.iter().map(|c| c.to_ascii_lowercase()).collect(),
            included_columns: Vec::new(),
            partitioning: None,
            enforces_constraint: false,
        }
    }

    /// A non-clustered index with optional included columns.
    pub fn non_clustered(database: &str, table: &str, keys: &[&str], included: &[&str]) -> Self {
        Self {
            database: database.to_ascii_lowercase(),
            table: table.to_ascii_lowercase(),
            kind: IndexKind::NonClustered,
            key_columns: keys.iter().map(|c| c.to_ascii_lowercase()).collect(),
            included_columns: included.iter().map(|c| c.to_ascii_lowercase()).collect(),
            partitioning: None,
            enforces_constraint: false,
        }
    }

    /// Builder-style: attach partitioning.
    pub fn partitioned(mut self, scheme: RangePartitioning) -> Self {
        self.partitioning = Some(scheme);
        self
    }

    /// Builder-style: mark as constraint-enforcing.
    pub fn constraint(mut self) -> Self {
        self.enforces_constraint = true;
        self
    }

    /// All columns materialized at the leaf (keys then includes).
    pub fn leaf_columns(&self) -> impl Iterator<Item = &String> {
        self.key_columns.iter().chain(self.included_columns.iter())
    }

    /// True if the index's leaf level contains every column in `needed`
    /// (i.e. the index *covers* a query touching only those columns).
    /// Clustered indexes cover everything.
    pub fn covers(&self, needed: &[String]) -> bool {
        if self.kind == IndexKind::Clustered {
            return true;
        }
        needed.iter().all(|n| self.leaf_columns().any(|c| c == n))
    }

    /// Length of the longest prefix of the key columns found (as a set
    /// prefix) among `sargable`: how many leading keys a seek can use.
    pub fn seekable_prefix_len(&self, sargable: &[String]) -> usize {
        self.key_columns.iter().take_while(|k| sargable.iter().any(|s| s == *k)).count()
    }

    /// Descriptive, deterministic name.
    pub fn name(&self) -> String {
        let kind = match self.kind {
            IndexKind::Clustered => "cidx",
            IndexKind::NonClustered => "idx",
        };
        let mut n = format!("{kind}_{}_{}", self.table, self.key_columns.join("_"));
        if !self.included_columns.is_empty() {
            n.push_str("_incl_");
            n.push_str(&self.included_columns.join("_"));
        }
        if let Some(p) = &self.partitioning {
            n.push_str(&format!("_p{}", p.column));
        }
        n
    }

    /// Structural validity: non-empty distinct keys, includes disjoint
    /// from keys, clustered indexes carry no includes.
    pub fn is_well_formed(&self) -> bool {
        if self.key_columns.is_empty() {
            return false;
        }
        let mut seen = std::collections::HashSet::new();
        for k in &self.key_columns {
            if !seen.insert(k) {
                return false;
            }
        }
        for i in &self.included_columns {
            if !seen.insert(i) {
                return false;
            }
        }
        if self.kind == IndexKind::Clustered && !self.included_columns.is_empty() {
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_catalog::Value;

    #[test]
    fn covering() {
        let idx = Index::non_clustered("db", "t", &["x"], &["a"]);
        assert!(idx.covers(&["x".into(), "a".into()]));
        assert!(!idx.covers(&["x".into(), "b".into()]));
        let cidx = Index::clustered("db", "t", &["x"]);
        assert!(cidx.covers(&["anything".into()]));
    }

    #[test]
    fn seekable_prefix() {
        let idx = Index::non_clustered("db", "t", &["a", "b", "c"], &[]);
        assert_eq!(idx.seekable_prefix_len(&["a".into(), "b".into()]), 2);
        assert_eq!(idx.seekable_prefix_len(&["b".into(), "c".into()]), 0);
        assert_eq!(idx.seekable_prefix_len(&["a".into(), "c".into()]), 1);
    }

    #[test]
    fn well_formedness() {
        assert!(Index::non_clustered("db", "t", &["a"], &["b"]).is_well_formed());
        assert!(!Index::non_clustered("db", "t", &[], &[]).is_well_formed());
        assert!(!Index::non_clustered("db", "t", &["a", "a"], &[]).is_well_formed());
        assert!(!Index::non_clustered("db", "t", &["a"], &["a"]).is_well_formed());
        let mut bad_clustered = Index::clustered("db", "t", &["a"]);
        bad_clustered.included_columns.push("b".into());
        assert!(!bad_clustered.is_well_formed());
    }

    #[test]
    fn names_are_descriptive_and_distinct() {
        let a = Index::non_clustered("db", "t", &["x"], &["a"]);
        let b = Index::non_clustered("db", "t", &["x"], &[]);
        let c = Index::non_clustered("db", "t", &["x"], &[])
            .partitioned(RangePartitioning::new("x", vec![Value::Int(5)]));
        assert_ne!(a.name(), b.name());
        assert_ne!(b.name(), c.name());
    }
}
