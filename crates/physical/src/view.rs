//! Materialized views.
//!
//! Views are select-project-join expressions with optional grouping and
//! aggregation, held in a *structured* form (table set, equi-join pairs,
//! group-by columns, aggregates) rather than as raw SQL. The structured
//! form is what view matching in the optimizer and view merging in the
//! advisor operate on.

use crate::partitioning::RangePartitioning;
use dta_sql::AggFunc;

/// A table-qualified column, e.g. `lineitem.l_orderkey`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QualifiedColumn {
    pub table: String,
    pub column: String,
}

impl QualifiedColumn {
    /// Construct (lower-casing both parts).
    pub fn new(table: &str, column: &str) -> Self {
        Self { table: table.to_ascii_lowercase(), column: column.to_ascii_lowercase() }
    }
}

impl std::fmt::Display for QualifiedColumn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// An equi-join pair `left = right`, stored in normalized (sorted) order
/// so that `a.x = b.y` and `b.y = a.x` compare equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JoinPair {
    pub left: QualifiedColumn,
    pub right: QualifiedColumn,
}

impl JoinPair {
    /// Construct in normalized order.
    pub fn new(a: QualifiedColumn, b: QualifiedColumn) -> Self {
        if a <= b {
            Self { left: a, right: b }
        } else {
            Self { left: b, right: a }
        }
    }
}

/// An aggregate computed by a view.
///
/// The argument is stored as *canonical SQL text* over table-qualified
/// columns (e.g. `lineitem.l_extendedprice * (1 - lineitem.l_discount)`),
/// which lets views capture aggregate *expressions*, not only plain
/// columns — essential for TPC-H-style `SUM(price * (1 - discount))`
/// aggregates. `arg_columns` lists the base columns the argument reads
/// (for validity checks and update-maintenance analysis).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViewAggregate {
    pub func: AggFunc,
    /// Canonical argument text; `None` means `COUNT(*)`.
    pub arg: Option<String>,
    /// Base columns the argument references.
    pub arg_columns: Vec<QualifiedColumn>,
}

impl ViewAggregate {
    /// `COUNT(*)`.
    pub fn count_star() -> Self {
        Self { func: AggFunc::Count, arg: None, arg_columns: Vec::new() }
    }

    /// An aggregate over a single column.
    pub fn column(func: AggFunc, qc: QualifiedColumn) -> Self {
        Self { func, arg: Some(qc.to_string()), arg_columns: vec![qc] }
    }

    /// An aggregate over an arbitrary (table-qualified) expression.
    pub fn expr(func: AggFunc, text: impl Into<String>, columns: Vec<QualifiedColumn>) -> Self {
        Self { func, arg: Some(text.into()), arg_columns: columns }
    }
}

/// A materialized view over base tables of one database.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MaterializedView {
    pub database: String,
    /// Base tables joined, sorted and distinct.
    pub tables: Vec<String>,
    /// Equi-join pairs connecting the tables, normalized and sorted.
    pub join_pairs: Vec<JoinPair>,
    /// Group-by columns; empty together with empty `aggregates` means the
    /// view materializes the raw join result of `projected` columns.
    pub group_by: Vec<QualifiedColumn>,
    /// Aggregates computed per group.
    pub aggregates: Vec<ViewAggregate>,
    /// Columns projected when there is no grouping (a join view).
    pub projected: Vec<QualifiedColumn>,
    /// Optional range partitioning on one of the group-by columns.
    pub partitioning: Option<RangePartitioning>,
}

impl MaterializedView {
    /// Create a grouped (aggregation) view.
    pub fn grouped(
        database: &str,
        tables: &[&str],
        join_pairs: Vec<JoinPair>,
        group_by: Vec<QualifiedColumn>,
        aggregates: Vec<ViewAggregate>,
    ) -> Self {
        let mut v = Self {
            database: database.to_ascii_lowercase(),
            tables: tables.iter().map(|t| t.to_ascii_lowercase()).collect(),
            join_pairs,
            group_by,
            aggregates,
            projected: Vec::new(),
            partitioning: None,
        };
        v.normalize();
        v
    }

    /// Create an ungrouped join view projecting `projected`.
    pub fn join_view(
        database: &str,
        tables: &[&str],
        join_pairs: Vec<JoinPair>,
        projected: Vec<QualifiedColumn>,
    ) -> Self {
        let mut v = Self {
            database: database.to_ascii_lowercase(),
            tables: tables.iter().map(|t| t.to_ascii_lowercase()).collect(),
            join_pairs,
            group_by: Vec::new(),
            aggregates: Vec::new(),
            projected,
            partitioning: None,
        };
        v.normalize();
        v
    }

    /// Builder-style: attach partitioning.
    pub fn partitioned(mut self, scheme: RangePartitioning) -> Self {
        self.partitioning = Some(scheme);
        self
    }

    /// Canonicalize the structured form so equal views compare equal.
    pub fn normalize(&mut self) {
        self.tables.sort();
        self.tables.dedup();
        self.join_pairs.sort();
        self.join_pairs.dedup();
        self.group_by.sort();
        self.group_by.dedup();
        self.aggregates.sort();
        self.aggregates.dedup();
        self.projected.sort();
        self.projected.dedup();
    }

    /// True if the view aggregates (vs. a plain join view).
    pub fn is_grouped(&self) -> bool {
        !self.group_by.is_empty() || !self.aggregates.is_empty()
    }

    /// Output columns the view materializes: group-by columns (or
    /// projected columns) plus one column per aggregate.
    pub fn output_width_columns(&self) -> usize {
        if self.is_grouped() {
            self.group_by.len() + self.aggregates.len()
        } else {
            self.projected.len()
        }
    }

    /// Descriptive deterministic name.
    pub fn name(&self) -> String {
        let mut n = format!("mv_{}", self.tables.join("_"));
        if !self.group_by.is_empty() {
            n.push_str("_by_");
            n.push_str(
                &self.group_by.iter().map(|c| c.column.clone()).collect::<Vec<_>>().join("_"),
            );
        }
        if !self.aggregates.is_empty() {
            n.push_str(&format!("_agg{}", self.aggregates.len()));
        }
        if let Some(p) = &self.partitioning {
            n.push_str(&format!("_p{}", p.column));
        }
        n
    }

    /// SQL-ish definition text for reports and the XML schema.
    pub fn definition_sql(&self) -> String {
        let mut s = String::from("SELECT ");
        let mut items: Vec<String> = if self.is_grouped() {
            self.group_by.iter().map(|c| c.to_string()).collect()
        } else {
            self.projected.iter().map(|c| c.to_string()).collect()
        };
        for a in &self.aggregates {
            let arg = a.arg.clone().unwrap_or_else(|| "*".into());
            items.push(format!("{}({})", a.func.name(), arg));
        }
        if items.is_empty() {
            items.push("*".into());
        }
        s.push_str(&items.join(", "));
        s.push_str(" FROM ");
        s.push_str(&self.tables.join(", "));
        if !self.join_pairs.is_empty() {
            s.push_str(" WHERE ");
            s.push_str(
                &self
                    .join_pairs
                    .iter()
                    .map(|j| format!("{} = {}", j.left, j.right))
                    .collect::<Vec<_>>()
                    .join(" AND "),
            );
        }
        if !self.group_by.is_empty() {
            s.push_str(" GROUP BY ");
            s.push_str(&self.group_by.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(", "));
        }
        s
    }

    /// Structural validity: tables non-empty; every referenced column's
    /// table is in the table set; partitioning column is produced by the
    /// view.
    pub fn is_well_formed(&self) -> bool {
        if self.tables.is_empty() {
            return false;
        }
        let has_table = |qc: &QualifiedColumn| self.tables.contains(&qc.table);
        let cols_ok = self.join_pairs.iter().all(|j| has_table(&j.left) && has_table(&j.right))
            && self.group_by.iter().all(has_table)
            && self.projected.iter().all(has_table)
            && self.aggregates.iter().all(|a| a.arg_columns.iter().all(&has_table));
        if !cols_ok {
            return false;
        }
        // multi-table views must be connected by join pairs
        if self.tables.len() > 1 && self.join_pairs.len() + 1 < self.tables.len() {
            return false;
        }
        if let Some(p) = &self.partitioning {
            let produced =
                self.group_by.iter().chain(self.projected.iter()).any(|c| c.column == p.column);
            if !produced {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_catalog::Value;

    fn qc(t: &str, c: &str) -> QualifiedColumn {
        QualifiedColumn::new(t, c)
    }

    fn sample_view() -> MaterializedView {
        MaterializedView::grouped(
            "tpch",
            &["lineitem", "orders"],
            vec![JoinPair::new(qc("lineitem", "l_orderkey"), qc("orders", "o_orderkey"))],
            vec![qc("orders", "o_orderdate")],
            vec![
                ViewAggregate::column(AggFunc::Sum, qc("lineitem", "l_extendedprice")),
                ViewAggregate::count_star(),
            ],
        )
    }

    #[test]
    fn normalization_makes_equivalent_views_equal() {
        let a = MaterializedView::grouped(
            "db",
            &["t2", "t1"],
            vec![JoinPair::new(qc("t2", "y"), qc("t1", "x"))],
            vec![qc("t1", "g")],
            vec![],
        );
        let b = MaterializedView::grouped(
            "db",
            &["t1", "t2"],
            vec![JoinPair::new(qc("t1", "x"), qc("t2", "y"))],
            vec![qc("t1", "g")],
            vec![],
        );
        assert_eq!(a, b);
    }

    #[test]
    fn well_formedness() {
        assert!(sample_view().is_well_formed());

        // column from a table outside the view
        let mut bad = sample_view();
        bad.group_by.push(qc("customer", "c_name"));
        assert!(!bad.is_well_formed());

        // disconnected multi-table view
        let disconnected = MaterializedView::grouped("db", &["a", "b"], vec![], vec![], vec![]);
        assert!(!disconnected.is_well_formed());

        // partitioning on a column the view does not produce
        let bad_part = sample_view().partitioned(RangePartitioning::new(
            "l_shipdate",
            vec![Value::Str("1995-01-01".into())],
        ));
        assert!(!bad_part.is_well_formed());

        // partitioning on a produced column is fine
        let good_part = sample_view().partitioned(RangePartitioning::new(
            "o_orderdate",
            vec![Value::Str("1995-01-01".into())],
        ));
        assert!(good_part.is_well_formed());
    }

    #[test]
    fn definition_sql_readable() {
        let sql = sample_view().definition_sql();
        assert!(sql.starts_with("SELECT "));
        assert!(sql.contains("GROUP BY orders.o_orderdate"));
        assert!(sql.contains("SUM(lineitem.l_extendedprice)"));
        assert!(sql.contains("COUNT(*)"));
        assert!(sql.contains("lineitem.l_orderkey = orders.o_orderkey"));
    }

    #[test]
    fn output_width() {
        assert_eq!(sample_view().output_width_columns(), 3);
        let jv = MaterializedView::join_view(
            "db",
            &["a", "b"],
            vec![JoinPair::new(qc("a", "x"), qc("b", "y"))],
            vec![qc("a", "p"), qc("b", "q")],
        );
        assert_eq!(jv.output_width_columns(), 2);
        assert!(!jv.is_grouped());
    }

    #[test]
    fn names_deterministic() {
        assert_eq!(sample_view().name(), sample_view().name());
        assert!(sample_view().name().starts_with("mv_lineitem_orders"));
    }
}
