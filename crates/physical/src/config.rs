//! Configurations: sets of physical design structures.

use crate::partitioning::RangePartitioning;
use crate::sizing::{structure_bytes, SizingInfo};
use crate::{Index, IndexKind, MaterializedView, PhysicalStructure};
use dta_catalog::Catalog;

/// Why a configuration is not valid (§6.2: user-specified configurations
/// must be *valid*, i.e. realizable in the database).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidityError {
    /// Two different clusterings specified for one table — the paper's
    /// own example of an invalid configuration.
    MultipleClusterings { database: String, table: String },
    /// Two different table partitionings for one table.
    MultipleTablePartitionings { database: String, table: String },
    /// The structure references a database missing from the catalog.
    UnknownDatabase(String),
    /// The structure references a table missing from the catalog.
    UnknownTable { database: String, table: String },
    /// The structure references a column missing from its table.
    UnknownColumn { database: String, table: String, column: String },
    /// The structure is internally malformed (empty keys, duplicate
    /// columns, disconnected view...).
    Malformed(String),
    /// Identical structure appears twice.
    Duplicate(String),
}

impl std::fmt::Display for ValidityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidityError::MultipleClusterings { database, table } => {
                write!(f, "more than one clustering on {database}.{table}")
            }
            ValidityError::MultipleTablePartitionings { database, table } => {
                write!(f, "more than one table partitioning on {database}.{table}")
            }
            ValidityError::UnknownDatabase(d) => write!(f, "unknown database {d}"),
            ValidityError::UnknownTable { database, table } => {
                write!(f, "unknown table {database}.{table}")
            }
            ValidityError::UnknownColumn { database, table, column } => {
                write!(f, "unknown column {database}.{table}.{column}")
            }
            ValidityError::Malformed(s) => write!(f, "malformed structure {s}"),
            ValidityError::Duplicate(s) => write!(f, "duplicate structure {s}"),
        }
    }
}

/// A physical database design: a set of structures.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Configuration {
    structures: Vec<PhysicalStructure>,
}

impl Configuration {
    /// Empty configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from structures, de-duplicating.
    pub fn from_structures(structures: impl IntoIterator<Item = PhysicalStructure>) -> Self {
        let mut c = Self::new();
        for s in structures {
            c.add(s);
        }
        c
    }

    /// Add a structure; returns false if an identical one is present.
    pub fn add(&mut self, s: PhysicalStructure) -> bool {
        if self.structures.contains(&s) {
            false
        } else {
            self.structures.push(s);
            true
        }
    }

    /// Remove a structure; returns true if it was present.
    pub fn remove(&mut self, s: &PhysicalStructure) -> bool {
        match self.structures.iter().position(|x| x == s) {
            Some(i) => {
                self.structures.remove(i);
                true
            }
            None => false,
        }
    }

    /// Membership test.
    pub fn contains(&self, s: &PhysicalStructure) -> bool {
        self.structures.contains(s)
    }

    /// Number of structures.
    pub fn len(&self) -> usize {
        self.structures.len()
    }

    /// True if no structures.
    pub fn is_empty(&self) -> bool {
        self.structures.is_empty()
    }

    /// Iterate the structures.
    pub fn iter(&self) -> impl Iterator<Item = &PhysicalStructure> {
        self.structures.iter()
    }

    /// Union of two configurations.
    pub fn union(&self, other: &Configuration) -> Configuration {
        let mut c = self.clone();
        for s in other.iter() {
            c.add(s.clone());
        }
        c
    }

    /// All indexes on a table.
    pub fn indexes_on(&self, database: &str, table: &str) -> impl Iterator<Item = &Index> {
        let database = database.to_string();
        let table = table.to_string();
        self.structures.iter().filter_map(move |s| match s {
            PhysicalStructure::Index(i) if i.database == database && i.table == table => Some(i),
            _ => None,
        })
    }

    /// The clustered index on a table, if any.
    pub fn clustered_index(&self, database: &str, table: &str) -> Option<&Index> {
        self.indexes_on(database, table).find(|i| i.kind == IndexKind::Clustered)
    }

    /// Explicit heap partitioning of a table, if any.
    pub fn table_partitioning(&self, database: &str, table: &str) -> Option<&RangePartitioning> {
        self.structures.iter().find_map(|s| match s {
            PhysicalStructure::TablePartitioning { database: d, table: t, scheme }
                if d == database && t == table =>
            {
                Some(scheme)
            }
            _ => None,
        })
    }

    /// The partitioning the table's *data* actually has: the clustered
    /// index's partitioning if a clustered index exists, else the heap
    /// partitioning.
    pub fn effective_table_partitioning(
        &self,
        database: &str,
        table: &str,
    ) -> Option<&RangePartitioning> {
        if let Some(ci) = self.clustered_index(database, table) {
            return ci.partitioning.as_ref();
        }
        self.table_partitioning(database, table)
    }

    /// All materialized views in a database.
    pub fn views(&self, database: &str) -> impl Iterator<Item = &MaterializedView> {
        let database = database.to_string();
        self.structures.iter().filter_map(move |s| match s {
            PhysicalStructure::View(v) if v.database == database => Some(v),
            _ => None,
        })
    }

    /// Validate against a catalog (existence + well-formedness +
    /// single-clustering / single-partitioning rules). Returns all
    /// violations found.
    pub fn validate(&self, catalog: &Catalog) -> Vec<ValidityError> {
        let mut errors = Vec::new();
        let mut seen: Vec<&PhysicalStructure> = Vec::new();
        for s in &self.structures {
            if seen.contains(&s) {
                errors.push(ValidityError::Duplicate(s.name()));
            }
            seen.push(s);
        }

        let check_column = |errors: &mut Vec<ValidityError>, db: &str, table: &str, col: &str| {
            let Some(d) = catalog.database(db) else {
                errors.push(ValidityError::UnknownDatabase(db.to_string()));
                return;
            };
            let Some(t) = d.table(table) else {
                errors.push(ValidityError::UnknownTable {
                    database: db.to_string(),
                    table: table.to_string(),
                });
                return;
            };
            if !t.has_column(col) {
                errors.push(ValidityError::UnknownColumn {
                    database: db.to_string(),
                    table: table.to_string(),
                    column: col.to_string(),
                });
            }
        };

        for s in &self.structures {
            match s {
                PhysicalStructure::Index(ix) => {
                    if !ix.is_well_formed() {
                        errors.push(ValidityError::Malformed(ix.name()));
                    }
                    for c in ix.leaf_columns() {
                        check_column(&mut errors, &ix.database, &ix.table, c);
                    }
                    if let Some(p) = &ix.partitioning {
                        check_column(&mut errors, &ix.database, &ix.table, &p.column);
                    }
                }
                PhysicalStructure::View(v) => {
                    if !v.is_well_formed() {
                        errors.push(ValidityError::Malformed(v.name()));
                    }
                    for qc in v.group_by.iter().chain(v.projected.iter()) {
                        check_column(&mut errors, &v.database, &qc.table, &qc.column);
                    }
                    for jp in &v.join_pairs {
                        check_column(&mut errors, &v.database, &jp.left.table, &jp.left.column);
                        check_column(&mut errors, &v.database, &jp.right.table, &jp.right.column);
                    }
                }
                PhysicalStructure::TablePartitioning { database, table, scheme } => {
                    check_column(&mut errors, database, table, &scheme.column);
                }
            }
        }

        // one clustering and one heap partitioning per table
        let mut tables: Vec<(String, String)> = self
            .structures
            .iter()
            .filter_map(|s| s.table().map(|t| (s.database().to_string(), t.to_string())))
            .collect();
        tables.sort();
        tables.dedup();
        for (db, t) in tables {
            if self.indexes_on(&db, &t).filter(|i| i.kind == IndexKind::Clustered).count() > 1 {
                errors.push(ValidityError::MultipleClusterings {
                    database: db.clone(),
                    table: t.clone(),
                });
            }
            let parts = self
                .structures
                .iter()
                .filter(|s| {
                    matches!(s, PhysicalStructure::TablePartitioning { database, table, .. }
                        if *database == db && *table == t)
                })
                .count();
            if parts > 1 {
                errors.push(ValidityError::MultipleTablePartitionings { database: db, table: t });
            }
        }
        errors
    }

    /// The §4 alignment predicate: for every table that any structure in
    /// the configuration touches, the table and all of its indexes are
    /// partitioned identically (including "all unpartitioned").
    pub fn is_aligned(&self) -> bool {
        let mut tables: Vec<(String, String)> = self
            .structures
            .iter()
            .filter_map(|s| s.table().map(|t| (s.database().to_string(), t.to_string())))
            .collect();
        tables.sort();
        tables.dedup();
        for (db, t) in tables {
            let table_part = self.effective_table_partitioning(&db, &t).cloned();
            for ix in self.indexes_on(&db, &t) {
                if ix.partitioning != table_part {
                    return false;
                }
            }
            // a heap partitioning must agree with the clustered index too
            if let (Some(hp), Some(ci)) =
                (self.table_partitioning(&db, &t), self.clustered_index(&db, &t))
            {
                if ci.partitioning.as_ref() != Some(hp) {
                    return false;
                }
            }
        }
        true
    }

    /// Total incremental storage in bytes.
    pub fn total_bytes(&self, info: &dyn SizingInfo) -> u64 {
        self.structures.iter().map(|s| structure_bytes(s, info)).sum()
    }

    /// Structures present in `self` but not in `other`.
    pub fn difference(&self, other: &Configuration) -> Vec<&PhysicalStructure> {
        self.structures.iter().filter(|s| !other.contains(s)).collect()
    }
}

impl std::fmt::Display for Configuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Configuration ({} structures):", self.structures.len())?;
        for s in &self.structures {
            writeln!(f, "  - {}", s.name())?;
        }
        Ok(())
    }
}

impl FromIterator<PhysicalStructure> for Configuration {
    fn from_iter<T: IntoIterator<Item = PhysicalStructure>>(iter: T) -> Self {
        Self::from_structures(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_catalog::{Column, ColumnType, Database, Table, Value};

    fn catalog() -> Catalog {
        let mut db = Database::new("db");
        db.add_table(Table::new(
            "t",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("b", ColumnType::Int),
                Column::new("x", ColumnType::Int),
            ],
        ))
        .unwrap();
        let mut cat = Catalog::new();
        cat.add_database(db).unwrap();
        cat
    }

    fn part(col: &str) -> RangePartitioning {
        RangePartitioning::new(col, vec![Value::Int(10), Value::Int(20)])
    }

    #[test]
    fn add_remove_dedup() {
        let mut c = Configuration::new();
        let s = PhysicalStructure::Index(Index::non_clustered("db", "t", &["a"], &[]));
        assert!(c.add(s.clone()));
        assert!(!c.add(s.clone()));
        assert_eq!(c.len(), 1);
        assert!(c.remove(&s));
        assert!(!c.remove(&s));
        assert!(c.is_empty());
    }

    #[test]
    fn validity_multiple_clusterings() {
        let c = Configuration::from_structures([
            PhysicalStructure::Index(Index::clustered("db", "t", &["a"])),
            PhysicalStructure::Index(Index::clustered("db", "t", &["b"])),
        ]);
        let errs = c.validate(&catalog());
        assert!(errs.iter().any(|e| matches!(e, ValidityError::MultipleClusterings { .. })));
    }

    #[test]
    fn validity_unknown_objects() {
        let c = Configuration::from_structures([
            PhysicalStructure::Index(Index::non_clustered("db", "t", &["zzz"], &[])),
            PhysicalStructure::Index(Index::non_clustered("db", "missing", &["a"], &[])),
            PhysicalStructure::Index(Index::non_clustered("nodb", "t", &["a"], &[])),
        ]);
        let errs = c.validate(&catalog());
        assert!(errs.iter().any(|e| matches!(e, ValidityError::UnknownColumn { .. })));
        assert!(errs.iter().any(|e| matches!(e, ValidityError::UnknownTable { .. })));
        assert!(errs.iter().any(|e| matches!(e, ValidityError::UnknownDatabase(_))));
    }

    #[test]
    fn valid_config_passes() {
        let c = Configuration::from_structures([
            PhysicalStructure::Index(Index::clustered("db", "t", &["a"])),
            PhysicalStructure::Index(Index::non_clustered("db", "t", &["x"], &["b"])),
            PhysicalStructure::TablePartitioning {
                database: "db".into(),
                table: "t".into(),
                scheme: part("x"),
            },
        ]);
        assert!(c.validate(&catalog()).is_empty());
    }

    #[test]
    fn alignment_checks() {
        // aligned: table partitioned on x, all indexes partitioned on x
        let aligned = Configuration::from_structures([
            PhysicalStructure::TablePartitioning {
                database: "db".into(),
                table: "t".into(),
                scheme: part("x"),
            },
            PhysicalStructure::Index(
                Index::non_clustered("db", "t", &["a"], &[]).partitioned(part("x")),
            ),
        ]);
        assert!(aligned.is_aligned());

        // not aligned: index unpartitioned while table is partitioned
        let misaligned = Configuration::from_structures([
            PhysicalStructure::TablePartitioning {
                database: "db".into(),
                table: "t".into(),
                scheme: part("x"),
            },
            PhysicalStructure::Index(Index::non_clustered("db", "t", &["a"], &[])),
        ]);
        assert!(!misaligned.is_aligned());

        // unpartitioned everything is trivially aligned
        let plain = Configuration::from_structures([PhysicalStructure::Index(
            Index::non_clustered("db", "t", &["a"], &[]),
        )]);
        assert!(plain.is_aligned());

        // clustered index partitioning defines the table's partitioning
        let via_clustered = Configuration::from_structures([
            PhysicalStructure::Index(Index::clustered("db", "t", &["a"]).partitioned(part("x"))),
            PhysicalStructure::Index(
                Index::non_clustered("db", "t", &["b"], &[]).partitioned(part("x")),
            ),
        ]);
        assert!(via_clustered.is_aligned());
    }

    #[test]
    fn effective_partitioning_prefers_clustered() {
        let c = Configuration::from_structures([
            PhysicalStructure::Index(Index::clustered("db", "t", &["a"]).partitioned(part("a"))),
            PhysicalStructure::TablePartitioning {
                database: "db".into(),
                table: "t".into(),
                scheme: part("x"),
            },
        ]);
        assert_eq!(c.effective_table_partitioning("db", "t").unwrap().column, "a");
        // and that combination is not aligned (heap partitioning disagrees)
        assert!(!c.is_aligned());
    }

    #[test]
    fn union_and_difference() {
        let a = Configuration::from_structures([PhysicalStructure::Index(Index::non_clustered(
            "db",
            "t",
            &["a"],
            &[],
        ))]);
        let b = Configuration::from_structures([PhysicalStructure::Index(Index::non_clustered(
            "db",
            "t",
            &["b"],
            &[],
        ))]);
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        assert_eq!(u.difference(&a).len(), 1);
        assert_eq!(a.difference(&u).len(), 0);
    }
}
